"""Tests for the sharded, checkpointable run engine.

Covers the three pillars of :mod:`repro.engine`:

* **determinism** — shard plans are pure functions of their inputs;
* **equivalence** — a sharded run (any shard count, any strategy, serial or
  concurrent) produces a ``RunResult`` byte-identical to the unsharded
  ``BatchER.run`` path, including degenerate plans (empty shards,
  single-question runs);
* **crash safety** — for *every* possible crash point, a killed run resumed
  from its checkpoints finishes with zero repeated LLM calls, asserted with
  the deterministic fault-injection wrappers from :mod:`repro.engine.faults`.
"""

import json

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.schema import MatchLabel
from repro.engine import (
    BatchRecord,
    CheckpointStore,
    CrashingStore,
    InjectedFault,
    QuestionRecord,
    RunEngine,
    ShardHeader,
    ShardMerger,
    ShardPlanner,
    batch_fingerprint,
    config_fingerprint,
)
from repro.llm.executors import ConcurrentExecutor
from repro.pipeline.stages import RenderPrompts

CONFIG = BatcherConfig(seed=3)
SMALL_CONFIG = BatcherConfig(seed=3, max_questions=32)


@pytest.fixture(scope="module")
def beer_unsharded(beer_dataset):
    return BatchER(CONFIG).run(beer_dataset)


@pytest.fixture(scope="module")
def beer_small_unsharded(beer_dataset):
    return BatchER(SMALL_CONFIG).run(beer_dataset)


@pytest.fixture(scope="module")
def fz_unsharded(fz_dataset):
    return BatchER(CONFIG).run(fz_dataset)


@pytest.fixture(scope="module")
def beer_planned(beer_dataset):
    """A planned (prompt-rendered, not inferred) context for checkpoint tests."""
    return RunEngine(config=CONFIG).plan(beer_dataset)


class TestShardPlanner:
    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardPlanner(0)
        with pytest.raises(ValueError, match="strategy"):
            ShardPlanner(2, strategy="alphabetical")

    @pytest.mark.parametrize("strategy", ["fingerprint", "round-robin"])
    @pytest.mark.parametrize("num_shards", [1, 2, 5, 64])
    def test_plan_partitions_every_batch_exactly_once(
        self, beer_planned, strategy, num_shards
    ):
        batches = beer_planned.batches
        plan = ShardPlanner(num_shards, strategy=strategy).plan(batches)
        assert plan.num_shards == num_shards
        assigned = [batch_id for shard in plan.shards for batch_id in shard.batch_ids]
        assert sorted(assigned) == [batch.batch_id for batch in batches]

    def test_plan_is_deterministic(self, beer_planned):
        batches = beer_planned.batches
        first = ShardPlanner(4).plan(batches)
        second = ShardPlanner(4).plan(batches)
        assert first == second

    def test_more_shards_than_batches_yields_empty_shards(self, beer_planned):
        batches = beer_planned.batches
        plan = ShardPlanner(len(batches) * 3).plan(batches)
        assert plan.num_batches == len(batches)
        assert any(shard.is_empty for shard in plan.shards)

    def test_round_robin_balances_by_position(self, beer_planned):
        batches = beer_planned.batches
        plan = ShardPlanner(3, strategy="round-robin").plan(batches)
        for shard in plan.shards:
            assert all(batch_id % 3 == shard.shard_id for batch_id in shard.batch_ids)

    def test_fingerprint_assignment_is_content_addressed(self, beer_planned):
        batches = list(beer_planned.batches)
        plan = ShardPlanner(4).plan(batches)
        replanned = ShardPlanner(4).plan(list(reversed(batches)))
        # Same batches, different planning order: identical assignment.
        assert plan.shards == replanned.shards

    def test_plan_pairs_partitions_and_preserves_order(self, beer_questions):
        shard_indices = ShardPlanner(4).plan_pairs(beer_questions)
        flat = sorted(index for indices in shard_indices for index in indices)
        assert flat == list(range(len(beer_questions)))
        for indices in shard_indices:
            assert indices == sorted(indices)

    def test_batch_fingerprint_reflects_content_and_position(self, beer_planned):
        batches = beer_planned.batches
        assert batch_fingerprint(batches[0]) != batch_fingerprint(batches[1])
        assert batch_fingerprint(batches[0]) == batch_fingerprint(batches[0])


class TestCheckpointStore:
    def _header(self, num_batches=2):
        return ShardHeader(
            dataset="Beer",
            config_fingerprint="cfg",
            shard_fingerprint="shard",
            num_batches=num_batches,
            model="gpt-3.5-03",
        )

    def _record(self, batch_id):
        return BatchRecord(
            batch_id=batch_id,
            num_calls=1,
            prompt_tokens=100 + batch_id,
            completion_tokens=10,
            questions=(
                QuestionRecord(
                    index=batch_id * 2,
                    fingerprint=f"fp-{batch_id}",
                    label=MatchLabel.MATCH,
                    answered=True,
                ),
            ),
        )

    def test_round_trip(self, checkpoint_dir):
        store = CheckpointStore(checkpoint_dir)
        header = self._header()
        completed, writer = store.open_shard(0, header)
        assert completed == {}
        with writer:
            writer.append(self._record(0))
            writer.append(self._record(1))
        reloaded = store.completed_batches(0, header)
        assert set(reloaded) == {0, 1}
        assert reloaded[1] == self._record(1)

    def test_header_mismatch_discards_the_file(self, checkpoint_dir):
        store = CheckpointStore(checkpoint_dir)
        _, writer = store.open_shard(0, self._header())
        with writer:
            writer.append(self._record(0))
        other = ShardHeader(
            dataset="Beer",
            config_fingerprint="DIFFERENT",
            shard_fingerprint="shard",
            num_batches=2,
            model="gpt-3.5-03",
        )
        assert store.completed_batches(0, other) == {}

    def test_torn_tail_keeps_the_valid_prefix(self, checkpoint_dir):
        store = CheckpointStore(checkpoint_dir)
        header = self._header()
        _, writer = store.open_shard(0, header)
        with writer:
            writer.append(self._record(0))
            writer.append(self._record(1))
        path = store.shard_path(0)
        torn = path.read_text().rstrip("\n")[:-20]  # kill mid-write
        path.write_text(torn)
        assert set(store.completed_batches(0, header)) == {0}
        # Re-opening rewrites the file back to header + valid prefix.
        completed, writer = store.open_shard(0, header)
        writer.close()
        assert set(completed) == {0}
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert [entry["batch_id"] for entry in lines[1:]] == [0]

    def test_missing_file_is_a_fresh_start(self, checkpoint_dir):
        store = CheckpointStore(checkpoint_dir)
        assert store.completed_batches(7, self._header()) == {}

    def test_for_run_namespaces_and_preserves_type(self, checkpoint_dir):
        store = CrashingStore(checkpoint_dir, fail_at_append=0)
        child = store.for_run("beer-abc")
        assert isinstance(child, CrashingStore)
        assert child.directory == checkpoint_dir / "beer-abc"


class TestGoldenEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_beer_sharded_runs_are_byte_identical(
        self, beer_dataset, beer_unsharded, checkpoint_dir, shards
    ):
        result = BatchER(CONFIG).run(
            beer_dataset, shards=shards, checkpoint_dir=checkpoint_dir
        )
        assert result == beer_unsharded
        assert repr(result) == repr(beer_unsharded)
        assert result.summary() == beer_unsharded.summary()

    @pytest.mark.parametrize("shards", [2, 8])
    def test_fz_sharded_runs_are_byte_identical(
        self, fz_dataset, fz_unsharded, checkpoint_dir, shards
    ):
        result = BatchER(CONFIG).run(
            fz_dataset, shards=shards, checkpoint_dir=checkpoint_dir
        )
        assert result == fz_unsharded
        assert repr(result) == repr(fz_unsharded)

    def test_round_robin_strategy_is_equivalent_too(self, beer_dataset, beer_unsharded):
        engine = RunEngine(config=CONFIG, num_shards=5, shard_strategy="round-robin")
        assert engine.run(beer_dataset) == beer_unsharded

    def test_concurrent_shards_are_equivalent(
        self, beer_dataset, beer_unsharded, checkpoint_dir
    ):
        with ConcurrentExecutor(4) as executor:
            engine = RunEngine(
                config=CONFIG,
                executor=executor,
                num_shards=6,
                checkpoint_dir=checkpoint_dir,
            )
            assert engine.run(beer_dataset) == beer_unsharded

    def test_engine_without_checkpointing_is_equivalent(
        self, beer_dataset, beer_unsharded
    ):
        engine = RunEngine(config=CONFIG, num_shards=4)
        assert engine.run(beer_dataset) == beer_unsharded
        assert engine.last_report is not None
        assert engine.last_report.checkpointed is False

    def test_degenerate_empty_shards_single_question(self, beer_dataset):
        config = BatcherConfig(seed=3, max_questions=1)
        unsharded = BatchER(config).run(beer_dataset)
        sharded = RunEngine(config=config, num_shards=4).run(beer_dataset)
        assert sharded == unsharded
        assert unsharded.num_questions == 1

    def test_report_counts_a_fresh_run(self, beer_dataset, checkpoint_dir):
        engine = RunEngine(config=SMALL_CONFIG, num_shards=3, checkpoint_dir=checkpoint_dir)
        result = engine.run(beer_dataset)
        report = engine.last_report
        assert report.num_batches == result.num_batches
        assert report.batches_executed == report.num_batches
        assert report.batches_resumed == 0
        assert report.llm_calls == result.cost.num_llm_calls
        assert report.llm_calls_saved == 0
        assert sum(report.shard_sizes) == report.num_batches
        assert set(report.to_dict()) >= {"num_shards", "llm_calls", "shard_sizes"}


class TestCrashResume:
    def test_every_crash_point_resumes_with_zero_repeated_calls(
        self, beer_dataset, beer_small_unsharded, make_crashing_llm, tmp_path
    ):
        """The headline property: for every crash point k, the crashed run plus
        the resume together make exactly as many LLM calls as the unsharded
        run — no completed call is ever re-paid."""
        total_calls = beer_small_unsharded.cost.num_llm_calls
        assert total_calls > 1
        for k in range(1, total_calls + 1):
            directory = tmp_path / f"crash-{k}"
            llm = make_crashing_llm(SMALL_CONFIG, fail_at_call=k)
            engine = RunEngine(
                config=SMALL_CONFIG, llm=llm, num_shards=3, checkpoint_dir=directory
            )
            with pytest.raises(InjectedFault):
                engine.run(beer_dataset)
            # Sibling shards settle (and checkpoint) after the fault, so the
            # crashed run completes anywhere from k-1 calls up to all but the
            # faulted one — never the full run.
            assert k - 1 <= llm.successful_calls < total_calls
            resumed = engine.run(beer_dataset)
            assert resumed == beer_small_unsharded
            assert llm.successful_calls == total_calls

    def test_resume_after_kill_reports_saved_calls(
        self, beer_dataset, beer_small_unsharded, make_crashing_llm, checkpoint_dir
    ):
        total_calls = beer_small_unsharded.cost.num_llm_calls
        k = total_calls // 2 + 1
        llm = make_crashing_llm(SMALL_CONFIG, fail_at_call=k)
        engine = RunEngine(
            config=SMALL_CONFIG, llm=llm, num_shards=2, checkpoint_dir=checkpoint_dir
        )
        with pytest.raises(InjectedFault):
            engine.run(beer_dataset)
        checkpointed = llm.successful_calls  # all persisted before the re-raise
        resumed = engine.run(beer_dataset)
        assert resumed == beer_small_unsharded
        report = engine.last_report
        assert report.batches_resumed == checkpointed >= k - 1
        assert report.llm_calls_saved == checkpointed
        assert report.batches_executed == total_calls - checkpointed

    def test_completed_run_resumes_for_free(
        self, beer_dataset, beer_small_unsharded, make_crashing_llm, checkpoint_dir
    ):
        llm = make_crashing_llm(SMALL_CONFIG, fail_at_call=0)
        engine = RunEngine(
            config=SMALL_CONFIG, llm=llm, num_shards=3, checkpoint_dir=checkpoint_dir
        )
        first = engine.run(beer_dataset)
        calls_after_first = llm.successful_calls
        second = engine.run(beer_dataset)
        assert first == second == beer_small_unsharded
        assert llm.successful_calls == calls_after_first  # zero new LLM calls
        assert engine.last_report.batches_executed == 0
        assert engine.last_report.llm_calls_saved == engine.last_report.num_batches

    def test_checkpoint_crash_repays_at_most_the_torn_batch(
        self, beer_dataset, beer_small_unsharded, make_crashing_llm, checkpoint_dir
    ):
        """A crash *between* the LLM call and its persistence is the harshest
        point: that one call is paid but not saved, so resume re-pays exactly
        it — never more."""
        llm = make_crashing_llm(SMALL_CONFIG, fail_at_call=0)
        store = CrashingStore(checkpoint_dir, fail_at_append=3)
        engine = RunEngine(
            config=SMALL_CONFIG, llm=llm, num_shards=2, checkpoint_store=store
        )
        with pytest.raises(InjectedFault):
            engine.run(beer_dataset)
        resumed = engine.run(beer_dataset)
        total_calls = beer_small_unsharded.cost.num_llm_calls
        assert resumed == beer_small_unsharded
        assert llm.successful_calls == total_calls + 1
        # The merged result still accounts each batch exactly once.
        assert resumed.cost.num_llm_calls == total_calls

    def test_concurrent_crash_resume_is_still_exact(
        self, beer_dataset, beer_small_unsharded, make_crashing_llm, checkpoint_dir
    ):
        total_calls = beer_small_unsharded.cost.num_llm_calls
        llm = make_crashing_llm(SMALL_CONFIG, fail_at_call=2)
        with ConcurrentExecutor(3) as executor:
            engine = RunEngine(
                config=SMALL_CONFIG,
                llm=llm,
                executor=executor,
                num_shards=3,
                checkpoint_dir=checkpoint_dir,
            )
            with pytest.raises(InjectedFault):
                engine.run(beer_dataset)
            resumed = engine.run(beer_dataset)
        assert resumed == beer_small_unsharded
        assert llm.successful_calls == total_calls

    def test_stale_checkpoints_from_another_config_are_ignored(
        self, beer_dataset, make_crashing_llm, checkpoint_dir
    ):
        """Checkpoints are namespaced and header-checked by configuration: a
        run with a different seed must not resume from them."""
        RunEngine(config=SMALL_CONFIG, num_shards=2, checkpoint_dir=checkpoint_dir).run(
            beer_dataset
        )
        other_config = BatcherConfig(seed=4, max_questions=32)
        llm = make_crashing_llm(other_config, fail_at_call=0)
        engine = RunEngine(
            config=other_config, llm=llm, num_shards=2, checkpoint_dir=checkpoint_dir
        )
        result = engine.run(beer_dataset)
        assert llm.successful_calls == result.cost.num_llm_calls > 0
        assert result == BatchER(other_config).run(beer_dataset)


class TestShardMerger:
    def test_missing_batch_record_is_rejected(self, beer_planned):
        with pytest.raises(ValueError, match="missing batch records"):
            ShardMerger().merge(beer_planned, {})

    def test_foreign_batch_record_is_rejected(self, beer_dataset):
        engine = RunEngine(config=CONFIG, num_shards=1)
        context = engine.plan(beer_dataset)
        plan = engine.planner.plan(context.batches)
        records, _, _ = engine._execute_shard(plan.shards[0], context, None)
        bogus = BatchRecord(
            batch_id=max(records) + 1,
            num_calls=1,
            prompt_tokens=1,
            completion_tokens=1,
            questions=(),
        )
        with pytest.raises(ValueError, match="do not belong"):
            ShardMerger().merge(context, {**records, bogus.batch_id: bogus})

    def test_fingerprint_mismatch_is_rejected(self, beer_dataset):
        engine = RunEngine(config=CONFIG, num_shards=1)
        context = engine.plan(beer_dataset)
        plan = engine.planner.plan(context.batches)
        records, _, _ = engine._execute_shard(plan.shards[0], context, None)
        first = records[0]
        tampered = BatchRecord(
            batch_id=first.batch_id,
            num_calls=first.num_calls,
            prompt_tokens=first.prompt_tokens,
            completion_tokens=first.completion_tokens,
            questions=(
                QuestionRecord(
                    index=first.questions[0].index,
                    fingerprint="not-the-real-fingerprint",
                    label=first.questions[0].label,
                    answered=first.questions[0].answered,
                ),
            )
            + first.questions[1:],
        )
        with pytest.raises(ValueError, match="fingerprint"):
            ShardMerger().merge(context, {**records, 0: tampered})


class TestFacade:
    def test_config_fingerprint_tracks_every_field(self):
        base = config_fingerprint(BatcherConfig(seed=1))
        assert base == config_fingerprint(BatcherConfig(seed=1))
        assert base != config_fingerprint(BatcherConfig(seed=2))
        assert base != config_fingerprint(BatcherConfig(seed=1, batch_size=4))

    def test_build_engine_exposes_the_run_report(self, beer_dataset, checkpoint_dir):
        framework = BatchER(SMALL_CONFIG)
        engine = framework.build_engine(shards=2, checkpoint_dir=checkpoint_dir)
        result = engine.run(beer_dataset)
        assert engine.last_report.num_shards == 2
        assert result == BatchER(SMALL_CONFIG).run(beer_dataset)

    def test_checkpoint_dir_alone_keeps_executor_concurrency(
        self, beer_dataset, checkpoint_dir
    ):
        """Adding checkpointing to a concurrent facade must not silently
        serialize it: without an explicit shard count, the engine shards to
        the executor's worker bound."""
        with ConcurrentExecutor(4) as executor:
            framework = BatchER(CONFIG, executor=executor)
            result = framework.run(beer_dataset, checkpoint_dir=checkpoint_dir)
        assert result == BatchER(CONFIG).run(beer_dataset)
        run_dirs = list(checkpoint_dir.iterdir())
        assert len(run_dirs) == 1
        # 12 batches hash across all 4 shards for this fixed seed; the point
        # is that the plan followed the executor's worker bound, not 1.
        assert len(list(run_dirs[0].glob("shard-*.jsonl"))) == 4

    def test_run_without_engine_kwargs_keeps_the_legacy_path(self, beer_dataset):
        framework = BatchER(SMALL_CONFIG)
        assert framework.run(beer_dataset) == framework.run(
            beer_dataset, shards=1, checkpoint_dir=None
        )

    def test_planned_context_is_required(self, beer_dataset):
        engine = RunEngine(config=SMALL_CONFIG)
        context = engine.plan(beer_dataset)
        assert context.prompts is not None
        assert RenderPrompts.name in context.completed_stages
        assert context.responses is None  # planning makes no LLM calls
        assert context.cost.breakdown().num_llm_calls == 0
