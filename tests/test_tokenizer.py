"""Tests for the approximate LLM tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenizer import ApproxTokenizer, count_tokens


class TestApproxTokenizer:
    def setup_method(self):
        self.tokenizer = ApproxTokenizer()

    def test_empty_and_none(self):
        assert self.tokenizer.count("") == 0
        assert self.tokenizer.count(None) == 0

    def test_single_short_word(self):
        assert self.tokenizer.count("cat") == 1

    def test_long_word_costs_multiple_tokens(self):
        assert self.tokenizer.count("internationalization") >= 4

    def test_punctuation_counts(self):
        assert self.tokenizer.count("a, b; c!") >= 6

    def test_digits_grouped(self):
        result = self.tokenizer.tokenize("price: 123456")
        assert "123456" in result.chunks
        assert result.token_count >= 3

    def test_count_many_sums(self):
        texts = ["alpha beta", "gamma"]
        assert self.tokenizer.count_many(texts) == sum(self.tokenizer.count(t) for t in texts)

    def test_module_level_helper_matches_instance(self):
        text = "title: Samsung LED TV QX-4821B"
        assert count_tokens(text) == self.tokenizer.count(text)

    def test_longer_text_never_cheaper(self):
        base = "brand: Sony, model: XB-100"
        assert self.tokenizer.count(base + " extra words here") > self.tokenizer.count(base)

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_count_is_non_negative_and_deterministic(self, text):
        first = self.tokenizer.count(text)
        second = self.tokenizer.count(text)
        assert first == second
        assert first >= 0

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",), whitelist_characters=" "), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_concatenation_superadditive_within_rounding(self, text):
        # Splitting a text in half never *increases* the total token count by
        # more than a couple of boundary tokens.
        midpoint = len(text) // 2
        whole = self.tokenizer.count(text)
        parts = self.tokenizer.count(text[:midpoint]) + self.tokenizer.count(text[midpoint:])
        assert parts >= whole - 1
