"""Tests for the simulated PLM baselines and their building blocks."""

import numpy as np
import pytest

from repro.baselines.plm import (
    DittoMatcher,
    JointBertMatcher,
    LogisticRegressionClassifier,
    RandomFeatureMap,
    RobEMMatcher,
)

ALL_MATCHERS = (DittoMatcher, JointBertMatcher, RobEMMatcher)


class TestRandomFeatureMap:
    def test_output_dimension(self):
        feature_map = RandomFeatureMap(input_dimension=6, output_dimension=32, seed=0)
        transformed = feature_map.transform(np.zeros((4, 6)))
        assert transformed.shape == (4, 38)  # raw features are kept alongside

    def test_deterministic_for_seed(self):
        data = np.random.default_rng(0).random((5, 4))
        first = RandomFeatureMap(4, 16, seed=3).transform(data)
        second = RandomFeatureMap(4, 16, seed=3).transform(data)
        assert np.allclose(first, second)

    def test_dimension_mismatch_rejected(self):
        feature_map = RandomFeatureMap(input_dimension=4, output_dimension=8)
        with pytest.raises(ValueError):
            feature_map.transform(np.zeros((2, 5)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomFeatureMap(input_dimension=0)
        with pytest.raises(ValueError):
            RandomFeatureMap(input_dimension=3, output_dimension=0)


class TestLogisticRegression:
    def test_learns_linearly_separable_data(self):
        rng = np.random.default_rng(0)
        positives = rng.normal(loc=2.0, size=(60, 3))
        negatives = rng.normal(loc=-2.0, size=(60, 3))
        features = np.vstack([positives, negatives])
        labels = np.array([1] * 60 + [0] * 60)
        classifier = LogisticRegressionClassifier(epochs=200).fit(features, labels)
        predictions = classifier.predict(features)
        assert (predictions == labels).mean() > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((1, 2)))

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.zeros((3, 2)), np.zeros(2))

    def test_invalid_class_weighting_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(class_weighting="focal")

    def test_balanced_weighting_raises_minority_recall(self):
        rng = np.random.default_rng(1)
        # Heavily imbalanced, slightly overlapping classes.
        positives = rng.normal(loc=0.8, size=(12, 2))
        negatives = rng.normal(loc=-0.8, size=(188, 2))
        features = np.vstack([positives, negatives])
        labels = np.array([1] * 12 + [0] * 188)
        plain = LogisticRegressionClassifier(epochs=150, class_weighting="none").fit(features, labels)
        balanced = LogisticRegressionClassifier(epochs=150, class_weighting="balanced").fit(features, labels)
        recall_plain = plain.predict(features)[:12].mean()
        recall_balanced = balanced.predict(features)[:12].mean()
        assert recall_balanced >= recall_plain

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(2)
        features = rng.random((30, 4))
        labels = (features[:, 0] > 0.5).astype(int)
        classifier = LogisticRegressionClassifier(epochs=50).fit(features, labels)
        probabilities = classifier.predict_proba(features)
        assert ((probabilities >= 0.0) & (probabilities <= 1.0)).all()


class TestPLMMatchers:
    @pytest.mark.parametrize("matcher_class", ALL_MATCHERS)
    def test_evaluate_returns_result_with_labeling_cost(self, matcher_class, beer_dataset):
        result = matcher_class(seed=0).evaluate(beer_dataset, num_training_samples=60)
        assert result.method == matcher_class.name
        assert result.cost.api_cost == 0.0
        assert result.cost.num_labeled_pairs == 60
        assert result.cost.labeling_cost == pytest.approx(0.48)
        assert result.num_questions == len(beer_dataset.splits.test)
        assert 0.0 <= result.metrics.f1 <= 100.0

    @pytest.mark.parametrize("matcher_class", ALL_MATCHERS)
    def test_predict_before_fit_raises(self, matcher_class, beer_dataset):
        with pytest.raises(RuntimeError):
            matcher_class().predict(list(beer_dataset.splits.test))

    def test_invalid_sample_count_rejected(self, beer_dataset):
        with pytest.raises(ValueError):
            DittoMatcher().fit(beer_dataset, num_training_samples=0)

    def test_sample_count_clamped_to_train_size(self, beer_dataset):
        matcher = RobEMMatcher(seed=0)
        matcher.fit(beer_dataset, num_training_samples=10_000)
        assert matcher.num_training_samples == len(beer_dataset.splits.train)

    def test_learning_curve_rises_with_more_data(self, fz_dataset):
        # The defining property for Exp-3: more labeled data must not hurt much
        # and should help substantially from very small to large training sets.
        matcher_small = RobEMMatcher(seed=1)
        matcher_large = RobEMMatcher(seed=1)
        small = matcher_small.evaluate(fz_dataset, num_training_samples=12)
        large = matcher_large.evaluate(fz_dataset, num_training_samples=len(fz_dataset.splits.train))
        assert large.metrics.f1 >= small.metrics.f1

    def test_deterministic_given_seed(self, beer_dataset):
        first = DittoMatcher(seed=4).evaluate(beer_dataset, num_training_samples=50)
        second = DittoMatcher(seed=4).evaluate(beer_dataset, num_training_samples=50)
        assert first.metrics.f1 == second.metrics.f1
        assert first.predictions == second.predictions
