"""Tests for the columnar feature engine (FeatureStore + vectorized paths).

The engine's contract has two halves:

1. **Equivalence** — the vectorized ``extract_matrix`` paths (columnar
   similarity columns, batched sentence encoding, store memoization) are
   bit-identical to the scalar ``extract`` oracle, so engine-served runs
   reproduce engine-free runs exactly; and
2. **Caching semantics** — content-addressed hits, LRU eviction, statistics
   and the per-run pairwise-distance matrix reuse.
"""

import json

import numpy as np
import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import EntityPair, MatchLabel, Record
from repro.features import FeatureStore, create_feature_extractor, create_feature_store
from repro.features.factory import EXTRACTOR_VARIANTS
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline
from repro.text.embeddings import HashingSentenceEncoder


def scalar_matrix(extractor, pairs):
    """The scalar equivalence oracle: one ``extract`` call per pair."""
    if not pairs:
        return np.zeros((0, extractor.dimension), dtype=float)
    return np.vstack([extractor.extract(pair) for pair in pairs])


def make_pair(pair_id, left_values, right_values, label=None):
    return EntityPair(
        pair_id=pair_id,
        left=Record(f"{pair_id}-L", left_values),
        right=Record(f"{pair_id}-R", right_values),
        label=label,
    )


class TestVectorizedEncoder:
    def test_encode_batch_matches_encode_exactly(self):
        texts = [
            "here comes the fuzz",
            "Here Comes The Fuzz [Explicit]",
            "",
            "pale ale, sierra nevada",
            "here comes the fuzz",  # repeated text exercises the dedup path
            "ipa 7.2% abv",
        ]
        batch = HashingSentenceEncoder(dimension=128).encode_batch(texts)
        scalar = np.vstack(
            [HashingSentenceEncoder(dimension=128).encode(text) for text in texts]
        )
        assert np.array_equal(batch, scalar)

    def test_warm_memo_is_still_exact(self):
        encoder = HashingSentenceEncoder(dimension=64)
        texts = ["alpha beta", "gamma", "alpha beta"]
        cold = encoder.encode_batch(texts)
        warm = encoder.encode_batch(texts)
        assert np.array_equal(cold, warm)
        assert np.array_equal(encoder.encode("gamma"), cold[1])

    def test_memoized_vectors_are_isolated_copies(self):
        encoder = HashingSentenceEncoder(dimension=32)
        first = encoder.encode("mutate me")
        first[:] = 0.0
        assert np.linalg.norm(encoder.encode("mutate me")) > 0.0

    def test_text_cache_bound_is_enforced(self):
        encoder = HashingSentenceEncoder(dimension=16, text_cache_size=2)
        encoder.encode_batch(["a", "b", "c", "d"])
        assert len(encoder._text_cache) <= 2

    def test_empty_batch(self):
        assert HashingSentenceEncoder(dimension=16).encode_batch([]).shape == (0, 16)


class TestColumnarExtractorEquivalence:
    @pytest.mark.parametrize("variant", EXTRACTOR_VARIANTS)
    def test_extract_matrix_matches_scalar_extract(self, beer_dataset, variant):
        pairs = list(beer_dataset.splits.test)[:60] + list(beer_dataset.splits.train)[:60]
        extractor = create_feature_extractor(variant, beer_dataset.attributes)
        oracle = create_feature_extractor(variant, beer_dataset.attributes)
        assert np.array_equal(
            extractor.extract_matrix(pairs), scalar_matrix(oracle, pairs)
        )

    @pytest.mark.parametrize("variant", EXTRACTOR_VARIANTS)
    def test_missing_values_equivalent(self, variant):
        attributes = ("name", "brewery", "style")
        pairs = [
            make_pair("m0", {"name": "IPA"}, {"name": "IPA", "style": "ale"}),
            make_pair("m1", {"name": None, "brewery": ""}, {"brewery": None}),
            make_pair("m2", {"name": "IPA", "style": "ale"}, {"name": "IPA"}),
            make_pair("m2-dup", {"name": "IPA", "style": "ale"}, {"name": "IPA"}),
        ]
        extractor = create_feature_extractor(variant, attributes)
        oracle = create_feature_extractor(variant, attributes)
        assert np.array_equal(
            extractor.extract_matrix(pairs), scalar_matrix(oracle, pairs)
        )

    @pytest.mark.parametrize("variant", EXTRACTOR_VARIANTS)
    def test_repeated_calls_stay_equivalent(self, beer_dataset, variant):
        # The second call is served from the extractors' internal memo caches;
        # it must stay bit-identical to the first.
        pairs = list(beer_dataset.splits.test)[:30]
        extractor = create_feature_extractor(variant, beer_dataset.attributes)
        first = extractor.extract_matrix(pairs)
        second = extractor.extract_matrix(pairs)
        assert np.array_equal(first, second)


class TestFeatureStore:
    def test_store_matrix_matches_scalar_oracle(self, beer_dataset):
        pairs = list(beer_dataset.splits.test)[:40]
        store = create_feature_store("lr", beer_dataset.attributes)
        oracle = create_feature_extractor("lr", beer_dataset.attributes)
        cold = store.extract_matrix(pairs)
        warm = store.extract_matrix(pairs)
        expected = scalar_matrix(oracle, pairs)
        assert np.array_equal(cold, expected)
        assert np.array_equal(warm, expected)

    def test_hits_and_misses_are_counted(self, beer_dataset):
        pairs = list(beer_dataset.splits.test)[:10]
        store = create_feature_store("lr", beer_dataset.attributes)
        store.extract_matrix(pairs)
        stats = store.stats()
        assert stats.misses == 10 and stats.hits == 0 and stats.size == 10
        store.extract_matrix(pairs)
        stats = store.stats()
        assert stats.hits == 10 and stats.misses == 10
        assert stats.hit_rate == pytest.approx(0.5)

    def test_content_addressing_ignores_ids(self):
        attributes = ("name",)
        store = create_feature_store("lr", attributes)
        a = make_pair("a", {"name": "x"}, {"name": "y"})
        b = make_pair("totally-different-id", {"name": "x"}, {"name": "y"})
        store.extract_matrix([a])
        store.extract_matrix([b])
        assert store.stats().hits == 1
        assert len(store) == 1

    def test_duplicates_within_one_call_computed_once(self):
        attributes = ("name",)
        store = create_feature_store("lr", attributes)
        a = make_pair("a", {"name": "x"}, {"name": "y"})
        b = make_pair("b", {"name": "x"}, {"name": "y"})
        matrix = store.extract_matrix([a, b])
        assert np.array_equal(matrix[0], matrix[1])
        assert len(store) == 1

    def test_lru_eviction(self):
        attributes = ("name",)
        extractor = create_feature_extractor("lr", attributes)
        store = FeatureStore(extractor, capacity=2)
        pairs = [
            make_pair(f"p{i}", {"name": f"value {i}"}, {"name": f"other {i}"})
            for i in range(4)
        ]
        store.extract_matrix(pairs)
        stats = store.stats()
        assert stats.size == 2
        assert stats.evictions == 2

    def test_get_and_put_roundtrip(self):
        attributes = ("name", "style")
        store = create_feature_store("lr", attributes)
        pair = make_pair("p", {"name": "a"}, {"name": "b"})
        fingerprint = store.fingerprint(pair)
        assert fingerprint == pair_fingerprint(pair)
        assert store.get(fingerprint) is None
        store.put(fingerprint, [0.25, 0.5])
        vector = store.get(fingerprint)
        assert np.array_equal(vector, [0.25, 0.5])
        vector[:] = 0.0  # copies only: the store entry must not be mutable
        assert np.array_equal(store.get(fingerprint), [0.25, 0.5])

    def test_put_rejects_wrong_dimension(self):
        store = create_feature_store("lr", ("name",))
        with pytest.raises(ValueError, match="shape"):
            store.put("deadbeef", [0.1, 0.2])

    def test_invalid_capacity_rejected(self):
        extractor = create_feature_extractor("lr", ("name",))
        with pytest.raises(ValueError):
            FeatureStore(extractor, capacity=0)
        with pytest.raises(ValueError):
            FeatureStore(extractor, distance_cache_size=0)

    def test_empty_matrix(self):
        store = create_feature_store("lr", ("name",))
        assert store.extract_matrix([]).shape == (0, 1)


class TestChunkedExtraction:
    """Block-walked ``extract_matrix`` + memmap spill (million-record path)."""

    def make_pairs(self, count):
        return [
            make_pair(f"c{i}", {"name": f"item {i}"}, {"name": f"thing {i % 7}"})
            for i in range(count)
        ]

    def test_chunked_matrix_identical_to_one_shot(self):
        pairs = self.make_pairs(25)
        attributes = ("name",)
        chunked = FeatureStore(
            create_feature_extractor("lr", attributes), extract_block_size=4
        )
        one_shot = FeatureStore(
            create_feature_extractor("lr", attributes), extract_block_size=4096
        )
        assert np.array_equal(
            chunked.extract_matrix(pairs), one_shot.extract_matrix(pairs)
        )
        assert chunked.stats().chunked_extracts == 1
        assert one_shot.stats().chunked_extracts == 0
        # Hits on a warm store flow through the same chunked path.
        assert np.array_equal(
            chunked.extract_matrix(pairs), one_shot.extract_matrix(pairs)
        )
        assert chunked.stats().chunked_extracts == 2

    def test_memmap_spill_over_byte_budget(self):
        pairs = self.make_pairs(12)
        attributes = ("name",)
        store = FeatureStore(
            create_feature_extractor("lr", attributes),
            extract_block_size=5,
            matrix_byte_budget=8,  # any real matrix exceeds 8 bytes
        )
        in_ram = FeatureStore(create_feature_extractor("lr", attributes))
        spilled = store.extract_matrix(pairs)
        assert isinstance(spilled, np.memmap)
        assert np.array_equal(np.asarray(spilled), in_ram.extract_matrix(pairs))
        assert store.stats().memmap_matrices == 1
        # Small outputs stay in RAM even with a budget configured.
        assert not isinstance(store.extract_matrix([]), np.memmap)

    def test_stats_dict_carries_chunking_counters(self):
        store = create_feature_store("lr", ("name",))
        payload = store.stats().to_dict()
        assert {"chunked_extracts", "memmap_matrices", "planning"} <= set(payload)

    def test_create_feature_store_passthrough_reaches_planner(self):
        store = create_feature_store(
            "lr",
            ("name",),
            dense_planning_threshold=0,
            approx_planning_threshold=0,
            matrix_byte_budget=64,
        )
        assert store.planner.dense_threshold == 0
        assert store.planner.approx_threshold == 0
        assert store.matrix_byte_budget == 64

    def test_extract_block_size_validated(self):
        extractor = create_feature_extractor("lr", ("name",))
        with pytest.raises(ValueError, match="extract_block_size"):
            FeatureStore(extractor, extract_block_size=0)


class TestSharedDistanceMatrix:
    def test_distance_matrix_cached_by_content(self, beer_question_features):
        store = create_feature_store("lr", ("name",))
        first = store.pairwise_distances(beer_question_features)
        second = store.pairwise_distances(np.array(beer_question_features))
        assert first is second  # same content digest -> same cached matrix
        stats = store.stats()
        assert stats.distance_hits == 1 and stats.distance_misses == 1

    def test_metric_is_part_of_the_key(self, beer_question_features):
        store = create_feature_store("lr", ("name",))
        euclidean = store.pairwise_distances(beer_question_features, metric="euclidean")
        cosine = store.pairwise_distances(beer_question_features, metric="cosine")
        assert not np.array_equal(euclidean, cosine)
        assert store.stats().distance_misses == 2

    def test_matches_direct_computation(self, beer_question_features):
        from repro.clustering.distance import pairwise_distances

        store = create_feature_store("lr", ("name",))
        assert np.array_equal(
            store.pairwise_distances(beer_question_features, metric="euclidean"),
            pairwise_distances(beer_question_features, metric="euclidean"),
        )

    def test_cached_matrix_is_read_only(self, beer_question_features):
        store = create_feature_store("lr", ("name",))
        matrix = store.pairwise_distances(beer_question_features)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0


class TestGoldenRunEquivalence:
    """Fixed-seed runs through the engine reproduce the scalar path exactly."""

    @pytest.mark.parametrize("config", [
        BatcherConfig(seed=1, batching="diverse", selection="covering"),
        BatcherConfig(seed=1, batching="similar", selection="topk-batch"),
        BatcherConfig(seed=1, batching="random", selection="fixed",
                      feature_extractor="semantic"),
    ], ids=["diverse+covering", "similar+topk-batch", "random+fixed+semantic"])
    def test_run_result_byte_identical_to_scalar_path(self, beer_dataset, config):
        engine_result = BatchER(config).run(beer_dataset)

        # Scalar oracle run: pre-set the feature matrices with per-pair
        # extract() calls, so the pipeline never touches the columnar path.
        context = PipelineContext.from_dataset(beer_dataset, config)
        oracle = create_feature_extractor(config.feature_extractor, beer_dataset.attributes)
        context.question_features = scalar_matrix(oracle, context.questions)
        context.pool_features = scalar_matrix(oracle, context.pool)
        Pipeline.default().run(context)
        scalar_result = context.result

        assert engine_result == scalar_result
        assert engine_result.predictions == scalar_result.predictions
        assert json.dumps(engine_result.summary(), sort_keys=True) == json.dumps(
            scalar_result.summary(), sort_keys=True
        )

    def test_repeated_engine_runs_are_identical(self, beer_dataset):
        config = BatcherConfig(seed=3)
        assert BatchER(config).run(beer_dataset) == BatchER(config).run(beer_dataset)


class TestResolverAndServiceIntegration:
    def test_resolver_shares_one_store_across_calls(self, beer_dataset):
        from repro.pipeline import Resolver

        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolver.warm()
        store = resolver.feature_store
        assert store is not None
        assert len(store) == resolver.pool_size
        questions = [pair.without_label() for pair in beer_dataset.splits.test][:8]
        resolver.resolve(questions)
        first_stats = store.stats()
        # The same questions again: every vector is served from the store.
        resolver.resolve(questions)
        second_stats = store.stats()
        assert second_stats.hits >= first_stats.hits + len(questions)
        assert second_stats.misses == first_stats.misses

    def test_service_stats_expose_feature_store(self, beer_dataset):
        from repro.service import ResolutionService, ServiceConfig

        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=8, num_workers=1
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        questions = [pair.without_label() for pair in beer_dataset.splits.test][:8]
        with service:
            service.resolve_many(questions)
            stats = service.stats()
        assert stats.feature_store is not None
        assert stats.feature_store.size >= len(questions)
        payload = stats.to_dict()["feature_store"]
        assert set(payload) >= {"size", "hit_rate", "evictions"}

    def test_spill_carries_vectors_and_warm_start_seeds_store(
        self, beer_dataset, tmp_path
    ):
        from repro.service import ResolutionService, ServiceConfig

        spill = tmp_path / "cache.jsonl"
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=8,
            num_workers=1,
            spill_path=str(spill),
        )
        questions = [pair.without_label() for pair in beer_dataset.splits.test][:8]
        with ResolutionService.from_dataset(beer_dataset, config) as service:
            service.resolve_many(questions)
        entries = [json.loads(line) for line in spill.read_text().splitlines()]
        assert entries and all("vector" in entry for entry in entries)
        dimension = len(beer_dataset.attributes)
        assert all(len(entry["vector"]) == dimension for entry in entries)
        expected_tag = f"structure-lr/{tuple(beer_dataset.attributes)!r}"
        assert all(entry["extractor"] == expected_tag for entry in entries)

        # A fresh service warm-starts both caches from the spill file.
        restarted = ResolutionService.from_dataset(beer_dataset, config)
        restarted.start()
        try:
            store = restarted.resolver.feature_store
            for entry in entries:
                assert store.get(entry["fingerprint"]) is not None
            by_fingerprint = {
                entry["fingerprint"]: MatchLabel(entry["label"]) for entry in entries
            }
            resolutions = restarted.resolve_many(questions)
            assert restarted.stats().llm_calls == 0  # pure cache hits
            for question, resolution in zip(questions, resolutions):
                assert resolution.label == by_fingerprint[pair_fingerprint(question)]
        finally:
            restarted.stop(spill=False)

    def test_spilled_vectors_seed_late_known_schema(self, beer_dataset, tmp_path):
        """A service that learns its schema only after start() (demonstrations
        added later) must buffer spilled vectors and seed them once the
        feature store exists — not drop them."""
        from repro.service import ResolutionService, ServiceConfig

        spill = tmp_path / "cache.jsonl"
        questions = [pair.without_label() for pair in beer_dataset.splits.test][:4]
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), num_workers=1, spill_path=str(spill)
        )
        with ResolutionService.from_dataset(beer_dataset, config) as service:
            service.resolve_many(questions)

        # Restart with *no* demonstrations and no attributes: the store
        # cannot exist at start(), so the spilled vectors are buffered.
        late = ResolutionService(config)
        late.start()
        try:
            assert late.resolver.feature_store is None
            late.resolver.add_demonstrations(list(beer_dataset.splits.train)[:40])
            late.resolve_many(questions[:2])  # first flush drains the buffer
            store = late.resolver.feature_store
            for question in questions:
                assert store.get(pair_fingerprint(question)) is not None
        finally:
            late.stop(spill=False)

    def test_warm_start_rejects_other_extractor_variant(self, beer_dataset, tmp_path):
        """Same dimension, different variant: the 'lr' and 'jaccard' extractors
        both produce len(attributes)-d vectors, so the provenance tag is what
        keeps a jaccard session from being poisoned with lr vectors."""
        from repro.service import ResolutionService, ServiceConfig

        spill = tmp_path / "cache.jsonl"
        questions = [pair.without_label() for pair in beer_dataset.splits.test][:4]
        lr_config = ServiceConfig(
            batcher=BatcherConfig(seed=1, feature_extractor="lr"),
            num_workers=1,
            spill_path=str(spill),
        )
        with ResolutionService.from_dataset(beer_dataset, lr_config) as service:
            service.resolve_many(questions)

        jaccard_config = lr_config.with_overrides(
            batcher=BatcherConfig(seed=1, feature_extractor="jaccard")
        )
        restarted = ResolutionService.from_dataset(beer_dataset, jaccard_config)
        restarted.start()
        try:
            store = restarted.resolver.feature_store
            for question in questions:
                assert store.get(pair_fingerprint(question)) is None
            assert len(restarted.cache) > 0  # judgements still warm-start
        finally:
            restarted.stop(spill=False)

    def test_warm_start_skips_mismatched_vectors(self, beer_dataset, tmp_path):
        from repro.service import ResolutionService, ServiceConfig

        spill = tmp_path / "cache.jsonl"
        spill.write_text(
            json.dumps(
                {
                    "fingerprint": "00" * 16,
                    "label": 1,
                    "answered": True,
                    "vector": [0.1, 0.2],  # wrong dimensionality for the schema
                }
            )
            + "\n"
        )
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), num_workers=1, spill_path=str(spill)
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        service.start()
        try:
            assert service.resolver.feature_store.get("00" * 16) is None
            assert len(service.cache) == 1  # the judgement itself still loads
        finally:
            service.stop(spill=False)
