"""Focused tests for the covering-based demonstration selection (Section V)."""

import numpy as np
import pytest

from repro.batching import DiversityQuestionBatcher
from repro.clustering.distance import cross_distances
from repro.selection import CoveringSelector, TopKQuestionSelector


@pytest.fixture(scope="module")
def beer_batches(beer_questions, beer_question_features):
    return DiversityQuestionBatcher(batch_size=8, seed=0).create_batches(
        beer_questions, beer_question_features
    )


@pytest.fixture(scope="module")
def covering_result(beer_batches, beer_question_features, beer_pool, beer_pool_features):
    selector = CoveringSelector(num_demonstrations=8, seed=0)
    result = selector.select(beer_batches, beer_question_features, beer_pool, beer_pool_features)
    return selector, result


class TestThresholdResolution:
    def test_percentile_threshold_is_positive(self, beer_question_features):
        selector = CoveringSelector()
        threshold = selector.resolve_threshold(beer_question_features)
        assert threshold > 0.0

    def test_smaller_percentile_gives_smaller_threshold(self, beer_question_features):
        tight = CoveringSelector(threshold_percentile=2.0).resolve_threshold(beer_question_features)
        loose = CoveringSelector(threshold_percentile=50.0).resolve_threshold(beer_question_features)
        assert tight <= loose

    def test_explicit_threshold_wins(self, beer_question_features):
        selector = CoveringSelector(threshold=0.123)
        assert selector.resolve_threshold(beer_question_features) == 0.123

    def test_single_question_fallback(self):
        selector = CoveringSelector()
        assert selector.resolve_threshold(np.zeros((1, 4))) == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CoveringSelector(threshold_percentile=0.0)
        with pytest.raises(ValueError):
            CoveringSelector(threshold=-0.5)


class TestCoveringInvariant:
    def test_every_question_covered_or_nearest_fallback(
        self, covering_result, beer_batches, beer_question_features, beer_pool_features
    ):
        selector, result = covering_result
        threshold = selector.last_diagnostics.threshold
        distances = cross_distances(beer_question_features, beer_pool_features)
        for batch, batch_demos in zip(beer_batches, result.per_batch):
            demo_indices = list(batch_demos.pool_indices)
            assert demo_indices, "every batch must receive at least one demonstration"
            for question_index in batch.indices:
                question_distances = distances[question_index, demo_indices]
                # Either covered within the threshold, or assigned its nearest
                # demonstration from the generated set as a fallback.
                assert question_distances.min() <= max(threshold, distances[question_index].min() + 1e-9)

    def test_diagnostics_populated(self, covering_result):
        selector, result = covering_result
        diagnostics = selector.last_diagnostics
        assert diagnostics is not None
        assert diagnostics.demonstration_set_size >= result.num_labeled
        assert diagnostics.threshold > 0.0

    def test_batch_demos_come_from_generated_set(self, covering_result):
        selector, result = covering_result
        assert result.num_labeled <= selector.last_diagnostics.demonstration_set_size


class TestCostAdvantage:
    def test_far_fewer_labels_than_topk_question(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        covering = CoveringSelector(num_demonstrations=8, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        topk = TopKQuestionSelector(num_demonstrations=8, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert covering.num_labeled < topk.num_labeled

    def test_tighter_threshold_means_more_labels(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        tight = CoveringSelector(threshold_percentile=2.0, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        loose = CoveringSelector(threshold_percentile=40.0, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert tight.num_labeled >= loose.num_labeled

    def test_batch_covering_is_minimal_for_a_covered_question(self):
        # A single question covered by a pool demonstration must receive exactly
        # one demonstration: the Batch Covering phase never attaches more
        # demonstrations than needed to cover the batch.
        from repro.batching.base import QuestionBatch
        from repro.data.schema import EntityPair, MatchLabel, Record

        def pair(pair_id, text):
            return EntityPair(
                pair_id,
                Record(f"A-{pair_id}", {"name": text}),
                Record(f"B-{pair_id}", {"name": text}),
                MatchLabel.MATCH,
            )

        question = pair("q", "golden dragon")
        near_demo = pair("near", "golden dragon bistro")
        far_demo = pair("far", "completely unrelated steakhouse")
        batch = QuestionBatch(0, (0,), (question,))
        question_features = np.array([[1.0]])
        pool = [near_demo, far_demo]
        pool_features = np.array([[1.0], [9.0]])  # only the first is relevant
        selector = CoveringSelector(threshold=0.5)
        result = selector.select([batch], question_features, pool, pool_features)
        chosen = result.per_batch[0].demonstrations
        assert len(chosen) == 1
        assert chosen[0].pair_id == "near"
