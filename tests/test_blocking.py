"""Tests for the blocking substrate."""

import pytest

from repro.blocking import (
    MinHashLSHBlocker,
    MinHashSigner,
    SimilarityThresholdBlocker,
    TokenOverlapBlocker,
    band_keys,
    evaluate_blocking,
    hash_tokens,
)
from repro.data.schema import CandidateSet, EntityPair, MatchLabel, Record, Table


def make_tables():
    attributes = ("name", "brand")
    records_a = (
        Record("A-0", {"name": "samsung led tv 40 inch", "brand": "samsung"}),
        Record("A-1", {"name": "sony wireless headphones", "brand": "sony"}),
        Record("A-2", {"name": "hp ink cartridge black", "brand": "hp"}),
    )
    records_b = (
        Record("B-0", {"name": "samsung 40 inch led television", "brand": "samsung"}),
        Record("B-1", {"name": "sony headphones wireless over ear", "brand": "sony"}),
        Record("B-2", {"name": "lenovo laptop battery", "brand": "lenovo"}),
    )
    return (
        Table("A", attributes, records_a),
        Table("B", attributes, records_b),
    )


def gold_matches():
    table_a, table_b = make_tables()
    return CandidateSet(
        (
            EntityPair("g0", table_a.records[0], table_b.records[0], MatchLabel.MATCH),
            EntityPair("g1", table_a.records[1], table_b.records[1], MatchLabel.MATCH),
        )
    )


class TestTokenOverlapBlocker:
    def test_min_overlap_validation(self):
        with pytest.raises(ValueError):
            TokenOverlapBlocker(min_overlap=0)

    def test_blocks_matching_records_together(self):
        table_a, table_b = make_tables()
        result = TokenOverlapBlocker(min_overlap=2).block(table_a, table_b)
        surviving = {(p.left.record_id, p.right.record_id) for p in result.candidates}
        assert ("A-0", "B-0") in surviving
        assert ("A-1", "B-1") in surviving

    def test_prunes_unrelated_records(self):
        table_a, table_b = make_tables()
        result = TokenOverlapBlocker(min_overlap=2).block(table_a, table_b)
        surviving = {(p.left.record_id, p.right.record_id) for p in result.candidates}
        assert ("A-2", "B-2") not in surviving
        assert result.reduction_ratio > 0.0

    def test_total_possible_pairs(self):
        table_a, table_b = make_tables()
        result = TokenOverlapBlocker().block(table_a, table_b)
        assert result.total_possible_pairs == len(table_a) * len(table_b)

    def test_duplicate_record_ids_in_table_b(self):
        # Two B records share a record_id but have different contents; token
        # sets must be keyed by position (like the posting lists), not by id —
        # keying by id used to overwrite one record's tokens with the other's.
        attributes = ("name", "brand")
        table_a = Table(
            "A",
            attributes,
            (
                Record("A-0", {"name": "samsung led tv 40 inch", "brand": "samsung"}),
                Record("A-1", {"name": "sony wireless headphones", "brand": "sony"}),
            ),
        )
        table_b = Table(
            "B",
            attributes,
            (
                Record("B-dup", {"name": "samsung 40 inch led television", "brand": "samsung"}),
                Record("B-dup", {"name": "sony headphones wireless over ear", "brand": "sony"}),
            ),
        )
        result = TokenOverlapBlocker(min_overlap=2).block(table_a, table_b)
        surviving = {(p.left.record_id, p.right.values["name"]) for p in result.candidates}
        assert ("A-0", "samsung 40 inch led television") in surviving
        assert ("A-1", "sony headphones wireless over ear") in surviving
        # The unrelated cross pairs must not survive the duplicate-id merge.
        assert ("A-0", "sony headphones wireless over ear") not in surviving

    def test_recall_on_generated_dataset(self, wa_dataset):
        blocker = TokenOverlapBlocker(attributes=("title", "brand", "modelno"), min_overlap=2)
        result = blocker.block(wa_dataset.table_a, wa_dataset.table_b)
        quality = evaluate_blocking(result, wa_dataset.candidate_pairs)
        assert quality["pair_recall"] >= 0.9
        assert quality["reduction_ratio"] > 0.5


class TestMinHashLSHBlocker:
    def test_validation(self):
        with pytest.raises(ValueError, match="shingle_size"):
            MinHashLSHBlocker(shingle_size=0)
        with pytest.raises(ValueError, match="bands"):
            MinHashLSHBlocker(num_perm=64, bands=7)
        with pytest.raises(ValueError, match="candidate_cap"):
            MinHashLSHBlocker(candidate_cap=0)

    def test_keeps_similar_pairs(self):
        table_a, table_b = make_tables()
        result = MinHashLSHBlocker(bands=32).block(table_a, table_b)
        surviving = {(p.left.record_id, p.right.record_id) for p in result.candidates}
        assert ("A-0", "B-0") in surviving
        assert ("A-1", "B-1") in surviving

    def test_recall_and_reduction_on_generated_dataset(self, wa_dataset):
        result = MinHashLSHBlocker().block(wa_dataset.table_a, wa_dataset.table_b)
        quality = evaluate_blocking(result, wa_dataset.candidate_pairs)
        assert quality["pair_recall"] >= 0.9
        assert quality["reduction_ratio"] > 0.9

    def test_deterministic_across_calls(self, wa_dataset):
        blocker = MinHashLSHBlocker()
        first = blocker.block(wa_dataset.table_a, wa_dataset.table_b)
        second = MinHashLSHBlocker().block(wa_dataset.table_a, wa_dataset.table_b)
        key = lambda result: [
            (p.left.record_id, p.right.record_id) for p in result.candidates
        ]
        assert key(first) == key(second)

    def test_candidate_cap_bounds_each_left_record(self, wa_dataset):
        result = MinHashLSHBlocker(bands=32, candidate_cap=2).block(
            wa_dataset.table_a, wa_dataset.table_b
        )
        per_left = {}
        for pair in result.candidates:
            per_left[pair.left.record_id] = per_left.get(pair.left.record_id, 0) + 1
        assert per_left and max(per_left.values()) <= 2

    def test_signer_is_deterministic_and_banded(self):
        sets = [
            hash_tokens(tokens)
            for tokens in (
                ("samsung", "led", "tv"),
                ("samsung", "led", "television"),
                ("sony",),
            )
        ]
        signer = MinHashSigner(num_perm=64, seed=3)
        signatures = signer.signatures_of_sets(sets)
        assert signatures.shape == (3, 64)
        assert (signatures == MinHashSigner(num_perm=64, seed=3).signatures_of_sets(sets)).all()
        keys = band_keys(signatures, bands=16)
        assert keys.shape == (3, 16)
        # Overlapping token sets collide in more bands than disjoint ones.
        similar = int((keys[0] == keys[1]).sum())
        disjoint = int((keys[0] == keys[2]).sum())
        assert similar > disjoint


class TestSimilarityThresholdBlocker:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SimilarityThresholdBlocker(threshold=1.5)

    def test_higher_threshold_keeps_fewer_pairs(self):
        table_a, table_b = make_tables()
        loose = SimilarityThresholdBlocker(threshold=0.2, prefilter_overlap=1).block(table_a, table_b)
        strict = SimilarityThresholdBlocker(threshold=0.9, prefilter_overlap=1).block(table_a, table_b)
        assert len(strict.candidates) <= len(loose.candidates)

    def test_keeps_similar_pairs(self):
        table_a, table_b = make_tables()
        result = SimilarityThresholdBlocker(threshold=0.4, prefilter_overlap=1).block(table_a, table_b)
        surviving = {(p.left.record_id, p.right.record_id) for p in result.candidates}
        assert ("A-0", "B-0") in surviving


class TestEvaluateBlocking:
    def test_perfect_recall(self):
        table_a, table_b = make_tables()
        result = TokenOverlapBlocker(min_overlap=1).block(table_a, table_b)
        quality = evaluate_blocking(result, gold_matches())
        assert quality["pair_recall"] == 1.0

    def test_no_gold_matches_gives_full_recall(self):
        table_a, table_b = make_tables()
        result = TokenOverlapBlocker().block(table_a, table_b)
        quality = evaluate_blocking(result, CandidateSet(()))
        assert quality["pair_recall"] == 1.0
