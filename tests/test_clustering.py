"""Tests for the distance utilities, DBSCAN and K-Means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering.dbscan import DBSCAN, NOISE_LABEL
from repro.clustering.distance import (
    cosine_distance,
    cross_distances,
    elementwise_distances,
    euclidean_distance,
    get_distance_function,
    pairwise_distances,
)
from repro.clustering.kmeans import KMeans


def two_blobs(num_per_blob=20, separation=5.0, seed=0):
    rng = np.random.default_rng(seed)
    blob_a = rng.normal(loc=0.0, scale=0.3, size=(num_per_blob, 2))
    blob_b = rng.normal(loc=separation, scale=0.3, size=(num_per_blob, 2))
    return np.vstack([blob_a, blob_b])


class TestDistances:
    def test_euclidean_known_value(self):
        assert euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_cosine_orthogonal(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_cosine_zero_vectors(self):
        assert cosine_distance(np.zeros(3), np.zeros(3)) == 0.0
        assert cosine_distance(np.zeros(3), np.ones(3)) == 1.0

    def test_pairwise_matrix_properties(self):
        data = two_blobs(10)
        matrix = pairwise_distances(data)
        assert matrix.shape == (20, 20)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)
        assert (matrix >= 0.0).all()

    def test_pairwise_matches_pointwise_euclidean(self):
        data = two_blobs(6)
        matrix = pairwise_distances(data)
        for i in range(len(data)):
            for j in range(len(data)):
                assert matrix[i, j] == pytest.approx(euclidean_distance(data[i], data[j]), abs=1e-8)

    def test_cross_distances_shape_and_values(self):
        left = two_blobs(4)
        right = two_blobs(3, seed=1)
        matrix = cross_distances(left, right)
        assert matrix.shape == (8, 6)
        assert matrix[0, 0] == pytest.approx(euclidean_distance(left[0], right[0]), abs=1e-8)

    def test_elementwise_matches_pairwise_conventions(self):
        # elementwise_distances(left, right)[i] must equal the corresponding
        # pairwise/cross entries, including the cosine zero-vector rules.
        rng = np.random.default_rng(4)
        left = rng.normal(size=(6, 3))
        right = rng.normal(size=(6, 3))
        left[0] = 0.0
        right[0] = 0.0  # zero-zero -> 0.0 under cosine
        left[1] = 0.0  # zero vs non-zero -> 1.0 under cosine
        for metric in ("euclidean", "cosine"):
            expected = pairwise_distances(np.vstack([left, right]), metric=metric)[
                np.arange(6), np.arange(6) + 6
            ]
            actual = elementwise_distances(left, right, metric=metric)
            assert np.allclose(actual, expected, atol=1e-12)
        assert elementwise_distances(left[:1], right[:1], metric="cosine")[0] == 0.0
        assert elementwise_distances(left[1:2], right[1:2], metric="cosine")[0] == 1.0
        with pytest.raises(KeyError):
            elementwise_distances(left, right, metric="manhattan")

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            pairwise_distances(two_blobs(3), metric="manhattan")
        with pytest.raises(KeyError):
            get_distance_function("manhattan")

    def test_pairwise_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.array([1.0, 2.0, 3.0]))

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 8), st.integers(1, 4)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_pairwise_symmetry_property(self, data):
        matrix = pairwise_distances(data)
        assert np.allclose(matrix, matrix.T, atol=1e-8)
        assert (matrix >= -1e-9).all()


class TestDBSCAN:
    def test_two_blobs_found(self):
        data = two_blobs()
        result = DBSCAN(eps=1.0, min_samples=3).fit(data)
        assert result.num_clusters == 2
        # Points in the same blob share a label.
        assert len(set(result.labels[:20])) == 1
        assert len(set(result.labels[20:])) == 1
        assert result.labels[0] != result.labels[20]

    def test_noise_points_marked(self):
        data = np.vstack([two_blobs(), [[100.0, 100.0]]])
        result = DBSCAN(eps=1.0, min_samples=3).fit(data)
        assert result.labels[-1] == NOISE_LABEL

    def test_noise_becomes_singleton_cluster(self):
        data = np.vstack([two_blobs(), [[100.0, 100.0]]])
        result = DBSCAN(eps=1.0, min_samples=3).fit(data)
        clusters = result.clusters(include_noise_as_singletons=True)
        assert sorted(index for cluster in clusters for index in cluster) == list(range(len(data)))
        assert [len(data) - 1] in clusters

    def test_automatic_eps(self):
        data = two_blobs()
        result = DBSCAN(min_samples=3).fit(data)
        assert result.num_clusters >= 1

    def test_empty_input(self):
        result = DBSCAN().fit(np.zeros((0, 3)))
        assert result.num_clusters == 0
        assert result.labels.size == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=-1.0)
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0)
        with pytest.raises(ValueError):
            DBSCAN(eps_percentile=0.0)

    def test_precomputed_distance_matrix(self):
        data = two_blobs(8)
        distances = pairwise_distances(data)
        direct = DBSCAN(eps=1.0, min_samples=3).fit(data)
        precomputed = DBSCAN(eps=1.0, min_samples=3).fit(data, distances=distances)
        assert np.array_equal(direct.labels, precomputed.labels)


class TestKMeans:
    def test_two_blobs_found(self):
        data = two_blobs()
        result = KMeans(num_clusters=2, seed=0).fit(data)
        assert len(set(result.labels[:20])) == 1
        assert len(set(result.labels[20:])) == 1
        assert result.labels[0] != result.labels[-1]

    def test_k_clamped_to_num_points(self):
        data = two_blobs(2)  # 4 points
        result = KMeans(num_clusters=10, seed=0).fit(data)
        assert result.centroids.shape[0] <= 4

    def test_clusters_partition_points(self):
        data = two_blobs(10)
        result = KMeans(num_clusters=3, seed=1).fit(data)
        flattened = sorted(index for cluster in result.clusters() for index in cluster)
        assert flattened == list(range(len(data)))

    def test_deterministic_given_seed(self):
        data = two_blobs(15)
        first = KMeans(num_clusters=4, seed=5).fit(data)
        second = KMeans(num_clusters=4, seed=5).fit(data)
        assert np.array_equal(first.labels, second.labels)

    def test_inertia_decreases_with_more_clusters(self):
        data = two_blobs(15)
        one = KMeans(num_clusters=1, seed=0).fit(data)
        four = KMeans(num_clusters=4, seed=0).fit(data)
        assert four.inertia <= one.inertia

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=0)
        with pytest.raises(ValueError):
            KMeans(max_iterations=0)

    def test_empty_input(self):
        result = KMeans(num_clusters=3).fit(np.zeros((0, 2)))
        assert result.labels.size == 0

    def test_far_from_origin_blobs(self):
        # The expanded-norm assignment centres the data first, so clusters
        # separated by ~1 unit are still resolved at a ~1e7 common offset
        # (|x|^2 + |c|^2 would otherwise swallow the cross term).
        data = two_blobs(15, separation=5.0) + 1e7
        result = KMeans(num_clusters=2, seed=0).fit(data)
        assert len(set(result.labels[:15])) == 1
        assert len(set(result.labels[15:])) == 1
        assert result.labels[0] != result.labels[-1]
