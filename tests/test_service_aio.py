"""Tests for the asyncio HTTP front end (`repro.service.aio`).

The routing semantics are shared with the threaded front end through
``ServiceRouter``, so these tests focus on what the transport owns: HTTP/1.1
keep-alive, per-request read deadlines (slowloris), connection bounding,
graceful drain, and byte-identity of the routed bodies.
"""

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import BatcherConfig
from repro.service import ResolutionService, ServiceConfig
from repro.service.aio import AsyncServiceHTTPServer


@pytest.fixture(scope="module")
def aio_service(beer_dataset):
    config = ServiceConfig(
        batcher=BatcherConfig(seed=1), max_batch_size=8, max_wait_seconds=0.02
    )
    service = ResolutionService.from_dataset(beer_dataset, config).start()
    yield service
    service.stop()


@pytest.fixture(scope="module")
def aio_server(aio_service):
    server = AsyncServiceHTTPServer(aio_service, port=0).serve_in_background()
    yield server
    server.shutdown()


def _get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload, headers=None):
    request = urllib.request.Request(
        server.address + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _host_port(server):
    base = server.address.removeprefix("http://")
    host, _, port = base.rpartition(":")
    return host, int(port)


class TestRoutes:
    def test_healthz(self, aio_server):
        status, payload = _get(aio_server, "/healthz")
        assert status == 200
        assert payload["live"] is True and payload["running"] is True

    def test_resolve_roundtrip(self, aio_server, beer_dataset):
        pair = beer_dataset.splits.test[0]
        status, payload = _post(
            aio_server,
            "/resolve",
            {
                "pairs": [
                    {
                        "pair_id": "aio-q1",
                        "left": dict(pair.left.values),
                        "right": dict(pair.right.values),
                    }
                ]
            },
        )
        assert status == 200
        [resolution] = payload["resolutions"]
        assert resolution["pair_id"] == "aio-q1"
        assert resolution["label"] in (0, 1)

    def test_bulk_roundtrip(self, aio_server):
        status, payload = _post(
            aio_server,
            "/bulk",
            {
                "pairs": [{"left": {"name": "stout"}, "right": {"name": "Stout"}}],
                "shards": 1,
            },
        )
        assert status == 200
        assert len(payload["resolutions"]) == 1

    def test_stats_and_metrics(self, aio_server):
        status, stats = _get(aio_server, "/stats")
        assert status == 200
        assert "cache_hit_rate" in stats and "metrics" in stats
        with urllib.request.urlopen(
            aio_server.address + "/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            assert b"repro_service_requests_total" in response.read()

    def test_unknown_path_404(self, aio_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(aio_server, "/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_400(self, aio_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(aio_server, "/resolve", {"not-pairs": []})
        assert excinfo.value.code == 400

    def test_head_mirrors_get_without_body(self, aio_server):
        get = urllib.request.urlopen(aio_server.address + "/healthz", timeout=10)
        request = urllib.request.Request(
            aio_server.address + "/healthz", method="HEAD"
        )
        head = urllib.request.urlopen(request, timeout=10)
        assert head.status == get.status == 200
        assert head.read() == b""
        assert int(head.headers["Content-Length"]) == len(
            urllib.request.urlopen(aio_server.address + "/healthz", timeout=10).read()
        )

    def test_unsupported_method_501(self, aio_server):
        request = urllib.request.Request(
            aio_server.address + "/healthz", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 501


class TestTransport:
    def test_keepalive_serves_sequential_requests_on_one_connection(
        self, aio_server
    ):
        host, port = _host_port(aio_server)
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request("GET", "/healthz")
            first = connection.getresponse()
            assert first.status == 200
            first.read()
            sock = connection.sock
            assert sock is not None
            body = json.dumps(
                {"pairs": [{"left": {"name": "kb"}, "right": {"name": "KB"}}]}
            )
            connection.request(
                "POST", "/resolve", body, {"Content-Type": "application/json"}
            )
            second = connection.getresponse()
            assert second.status == 200
            second.read()
            assert connection.sock is sock
        finally:
            connection.close()

    def test_error_response_closes_connection(self, aio_server):
        host, port = _host_port(aio_server)
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/resolve",
                '{"pairs": [broken',
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.headers["Connection"] == "close"
            response.read()
            assert response.will_close
        finally:
            connection.close()

    def test_http10_connection_closes_by_default(self, aio_server):
        host, port = _host_port(aio_server)
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
            sock.settimeout(10)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed, as HTTP/1.0 demands
                chunks.append(chunk)
        response = b"".join(chunks).decode("latin-1")
        assert response.startswith("HTTP/1.1 200")
        assert "Connection: close" in response

    def test_half_sent_body_answered_408(self, aio_service):
        server = AsyncServiceHTTPServer(
            aio_service, port=0, read_timeout=0.3
        ).serve_in_background()
        try:
            host, port = _host_port(server)
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /resolve HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n"
                    b"\r\n"
                    b'{"pairs": [{"left"'
                )
                sock.settimeout(10)
                response = sock.recv(65536).decode("latin-1")
            assert response.startswith("HTTP/1.1 408")
            assert "stalled" in response
            assert "Connection: close" in response
        finally:
            server.shutdown()

    def test_malformed_request_line_400(self, aio_server):
        host, port = _host_port(aio_server)
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"NOT-HTTP\r\n")
            sock.settimeout(10)
            response = sock.recv(65536).decode("latin-1")
        assert response.startswith("HTTP/1.1 400")

    def test_bounded_connections_still_serve_excess_clients(self, aio_service):
        server = AsyncServiceHTTPServer(
            aio_service, port=0, max_connections=2
        ).serve_in_background()
        try:
            results = []
            errors = []

            def probe():
                try:
                    with urllib.request.urlopen(
                        server.address + "/healthz", timeout=10
                    ) as response:
                        results.append(response.status)
                except Exception as error:  # pragma: no cover - fail loudly
                    errors.append(error)

            threads = [threading.Thread(target=probe) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15)
            assert not errors
            assert results == [200] * 6
        finally:
            server.shutdown()


class TestLifecycle:
    def test_shutdown_refuses_new_connections(self, aio_service):
        server = AsyncServiceHTTPServer(aio_service, port=0).serve_in_background()
        status, _ = (
            urllib.request.urlopen(server.address + "/healthz", timeout=10).status,
            None,
        )
        assert status == 200
        host, port = _host_port(server)
        server.shutdown()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)

    def test_shutdown_is_idempotent_and_restartable_service_untouched(
        self, aio_service
    ):
        server = AsyncServiceHTTPServer(aio_service, port=0).serve_in_background()
        server.shutdown()
        server.shutdown()  # second call is a no-op
        assert aio_service.running  # the service outlives its front end

    def test_constructor_validation(self, aio_service):
        with pytest.raises(ValueError, match="max_connections"):
            AsyncServiceHTTPServer(aio_service, max_connections=0)
        with pytest.raises(ValueError, match="read_timeout"):
            AsyncServiceHTTPServer(aio_service, read_timeout=0.0)
        with pytest.raises(ValueError, match="drain_timeout"):
            AsyncServiceHTTPServer(aio_service, drain_timeout=-1.0)

    def test_requests_served_counter(self, aio_service):
        server = AsyncServiceHTTPServer(aio_service, port=0).serve_in_background()
        try:
            urllib.request.urlopen(server.address + "/healthz", timeout=10).read()
            urllib.request.urlopen(server.address + "/stats", timeout=10).read()
            assert server.requests_served >= 2
        finally:
            server.shutdown()


class TestFrontendIdentity:
    def test_byte_identical_bodies_across_frontends(self, aio_service):
        # The self-test helper drives the same cached POST through both front
        # ends and byte-compares the bodies; reuse it as the unit-level oracle.
        from repro.service.cli import _frontend_checks

        checks = _frontend_checks(aio_service)
        assert checks == {
            "async_frontend_byte_identical_to_threaded": True,
            "head_answered_on_both_frontends": True,
        }
