"""Tests for the streaming Resolver session."""

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.schema import MatchLabel
from repro.llm.executors import ConcurrentExecutor
from repro.pipeline import Resolution, Resolver


@pytest.fixture()
def unlabeled_questions(beer_dataset):
    return [pair.without_label() for pair in list(beer_dataset.splits.test)[:24]]


class TestResolve:
    def test_resolutions_align_with_input_order(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolutions = resolver.resolve(unlabeled_questions)
        assert [r.pair_id for r in resolutions] == [p.pair_id for p in unlabeled_questions]
        assert all(isinstance(r, Resolution) for r in resolutions)
        assert all(isinstance(r.label, MatchLabel) for r in resolutions)
        assert all(r.is_match == (r.label is MatchLabel.MATCH) for r in resolutions)

    def test_agrees_with_batcher_on_same_questions(self, beer_dataset):
        # Same questions, same pool, same config: the serving path must give
        # the same predictions as the benchmarking path.
        config = BatcherConfig(seed=1, max_questions=24)
        benchmark = BatchER(config).run(beer_dataset)
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        questions = [pair.without_label() for pair in list(beer_dataset.splits.test)[:24]]
        resolutions = resolver.resolve(questions)
        assert tuple(r.label for r in resolutions) == benchmark.predictions

    def test_empty_stream_is_a_noop(self, beer_dataset):
        resolver = Resolver.from_dataset(beer_dataset)
        assert resolver.resolve([]) == []
        assert resolver.num_resolved == 0
        assert resolver.usage.num_calls == 0

    def test_resolver_without_pool_rejected(self, unlabeled_questions):
        resolver = Resolver(BatcherConfig(seed=1))
        with pytest.raises(ValueError, match="no demonstrations"):
            resolver.resolve(unlabeled_questions)

    def test_unlabeled_demonstrations_rejected(self, beer_dataset):
        unlabeled = [pair.without_label() for pair in list(beer_dataset.splits.train)[:4]]
        with pytest.raises(ValueError, match="must be labeled"):
            Resolver(BatcherConfig(seed=1), demonstrations=unlabeled)

    def test_concurrent_executor_matches_serial(self, beer_dataset, unlabeled_questions):
        serial = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        concurrent = Resolver.from_dataset(
            beer_dataset, BatcherConfig(seed=1), executor=ConcurrentExecutor(max_workers=8)
        )
        assert [r.label for r in serial.resolve(unlabeled_questions)] == [
            r.label for r in concurrent.resolve(unlabeled_questions)
        ]


class TestIncrementalResolution:
    def test_resolve_iter_streams_in_chunks(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        stream = resolver.resolve_iter(iter(unlabeled_questions), chunk_size=8)
        first = next(stream)
        # The first chunk is resolved after consuming only 8 pairs: exactly
        # one flush has hit the LLM so far.
        calls_after_first_chunk = resolver.usage.num_calls
        assert first.pair_id == unlabeled_questions[0].pair_id
        assert calls_after_first_chunk >= 1
        assert resolver.num_resolved == 8
        rest = list(stream)
        assert 1 + len(rest) == len(unlabeled_questions)
        assert resolver.num_resolved == len(unlabeled_questions)
        assert resolver.usage.num_calls > calls_after_first_chunk

    def test_resolve_iter_matches_resolve(self, beer_dataset, unlabeled_questions):
        config = BatcherConfig(seed=1)
        whole = Resolver.from_dataset(beer_dataset, config).resolve(unlabeled_questions)
        streamed = list(
            Resolver.from_dataset(beer_dataset, config).resolve_iter(
                unlabeled_questions, chunk_size=len(unlabeled_questions)
            )
        )
        assert [r.label for r in streamed] == [r.label for r in whole]

    def test_invalid_chunk_size_rejected(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset)
        with pytest.raises(ValueError, match="chunk_size"):
            list(resolver.resolve_iter(unlabeled_questions, chunk_size=0))

    def test_single_pass_iterator_is_safe(self, beer_dataset, unlabeled_questions):
        # A generator can only be consumed once; resolve_iter must consume it
        # exactly once and resolve every pair it yields.
        config = BatcherConfig(seed=1)
        consumed = 0

        def one_shot_stream():
            nonlocal consumed
            for pair in unlabeled_questions:
                consumed += 1
                yield pair

        streamed = list(
            Resolver.from_dataset(beer_dataset, config).resolve_iter(
                one_shot_stream(), chunk_size=8
            )
        )
        assert consumed == len(unlabeled_questions)
        assert [r.pair_id for r in streamed] == [p.pair_id for p in unlabeled_questions]
        whole = Resolver.from_dataset(beer_dataset, config).resolve_iter(
            iter(unlabeled_questions), chunk_size=8
        )
        assert [r.label for r in streamed] == [r.label for r in whole]


class TestResolutionSnapshot:
    def test_to_dict_is_json_shaped(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolution = resolver.resolve(unlabeled_questions[:8])[0]
        payload = resolution.to_dict()
        assert payload["pair_id"] == resolution.pair_id
        assert payload["label"] in (0, 1)
        assert payload["label_name"] in ("MATCH", "NON_MATCH")
        assert payload["is_match"] == (payload["label"] == 1)
        assert isinstance(payload["answered"], bool)


class TestWarm:
    def test_warm_featurizes_pool_eagerly(self, beer_dataset):
        resolver = Resolver.from_dataset(beer_dataset)
        assert resolver._pool_features_cache is None
        assert resolver.warm() == resolver.pool_size
        assert resolver._pool_features_cache is not None
        cached = resolver._pool_features_cache
        resolver.warm()  # idempotent: no recomputation
        assert resolver._pool_features_cache is cached

    def test_warm_without_pool_rejected(self):
        with pytest.raises(ValueError, match="without demonstrations"):
            Resolver(BatcherConfig(seed=1)).warm()


class TestSessionAccounting:
    def test_labeling_cost_paid_once_across_calls(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolver.resolve(unlabeled_questions)
        first_labeled = resolver.num_labeled
        first_cost = resolver.cost()
        assert first_labeled > 0
        assert first_cost.labeling_cost > 0.0
        # Re-resolving the same pairs selects the same demonstrations, which
        # are already labeled: no new labeling cost, only new API cost.
        resolver.resolve(unlabeled_questions)
        second_cost = resolver.cost()
        assert resolver.num_labeled == first_labeled
        assert second_cost.num_labeled_pairs == first_cost.num_labeled_pairs
        assert second_cost.labeling_cost == first_cost.labeling_cost
        assert second_cost.num_llm_calls == 2 * first_cost.num_llm_calls
        assert second_cost.api_cost > first_cost.api_cost

    def test_usage_accumulates_across_calls(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolver.resolve(unlabeled_questions[:8])
        calls_after_first = resolver.usage.num_calls
        resolver.resolve(unlabeled_questions[8:16])
        assert resolver.usage.num_calls > calls_after_first
        assert resolver.num_resolved == 16

    def test_pool_grows_with_added_demonstrations(self, beer_dataset):
        resolver = Resolver.from_dataset(beer_dataset)
        before = resolver.pool_size
        resolver.add_demonstrations(list(beer_dataset.splits.validation)[:5])
        assert resolver.pool_size == before + 5

    def test_pool_features_cached_across_calls(self, beer_dataset, unlabeled_questions):
        resolver = Resolver.from_dataset(beer_dataset, BatcherConfig(seed=1))
        resolver.resolve(unlabeled_questions[:8])
        cached = resolver._pool_features_cache
        assert cached is not None
        resolver.resolve(unlabeled_questions[8:16])
        assert resolver._pool_features_cache is cached  # not recomputed
        resolver.add_demonstrations(list(beer_dataset.splits.validation)[:2])
        assert resolver._pool_features_cache is None  # invalidated by pool growth
        resolver.resolve(unlabeled_questions[16:])
        assert resolver._pool_features_cache is not None

    def test_failed_inference_does_not_double_charge_labeling(
        self, beer_dataset, unlabeled_questions
    ):
        from repro.llm.simulated import SimulatedLLM

        class FlakyLLM(SimulatedLLM):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.fail_next = True

            def _generate(self, prompt_text):
                if self.fail_next:
                    self.fail_next = False
                    raise ConnectionError("transient API failure")
                return super()._generate(prompt_text)

        resolver = Resolver.from_dataset(
            beer_dataset, BatcherConfig(seed=1), llm=FlakyLLM("gpt-3.5-03", seed=1)
        )
        with pytest.raises(ConnectionError):
            resolver.resolve(unlabeled_questions)
        labeled_after_failure = resolver.cost().num_labeled_pairs
        assert labeled_after_failure > 0  # selection ran and was charged
        resolver.resolve(unlabeled_questions)  # retry succeeds
        # Pay-once invariant: the retry reuses the already-charged demos.
        assert resolver.cost().num_labeled_pairs == labeled_after_failure
        assert resolver.num_labeled == labeled_after_failure
