"""Engine registry tests: configs, factories, env resolution, create_llm contract."""

import pytest

from repro.core.config import BatcherConfig
from repro.engines import (
    AnthropicEngine,
    AnthropicEngineConfig,
    Engine,
    OpenAICompatibleEngine,
    OpenAIEngine,
    OpenAIEngineConfig,
    SimulatedEngine,
    SimulatedEngineConfig,
    available_engines,
    create_engine,
    engine_config_from_env,
    engine_from_env,
    register_engine,
)
from repro.engines.registry import build_config
from repro.llm.registry import create_llm
from repro.llm.simulated import SimulatedLLM


class TestRegistry:
    def test_available_engines(self):
        assert available_engines() == (
            "anthropic",
            "openai",
            "openai_compatible",
            "simulated",
        )

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine.*expected one of"):
            create_engine("bedrock")

    def test_unknown_config_field_raises(self):
        with pytest.raises(ValueError, match="unknown 'simulated' engine config fields"):
            build_config("simulated", base_url="http://x")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("simulated", SimulatedEngineConfig, lambda *a, **k: None)

    @pytest.mark.parametrize(
        ("name", "engine_cls"),
        [
            ("simulated", SimulatedEngine),
            ("openai", OpenAIEngine),
            ("openai_compatible", OpenAICompatibleEngine),
            ("anthropic", AnthropicEngine),
        ],
    )
    def test_create_engine_builds_offline(self, name, engine_cls):
        # Construction must never touch the network; only sends do.
        engine = create_engine(name, model="gpt-3.5-03", seed=1)
        assert isinstance(engine, engine_cls)
        assert isinstance(engine, Engine)
        assert engine.engine_name == name
        assert engine.model_name == "gpt-3.5-03"

    def test_create_engine_from_config_instance(self):
        config = OpenAIEngineConfig(model="gpt-4", provider_model="gpt-4-turbo")
        engine = create_engine(config)
        assert isinstance(engine, OpenAIEngine)
        assert engine.provider_model == "gpt-4-turbo"
        # Overrides apply on top of the given config.
        patched = create_engine(config, provider_model="gpt-4o")
        assert patched.provider_model == "gpt-4o"

    def test_simulated_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model.*expected one of"):
            create_engine("simulated", model="claude-opus")

    def test_simulated_engine_is_byte_identical_to_simulated_llm(self):
        prompts = [f"Q{i}: are these the same entity? Answer Yes or No." for i in range(8)]
        raw = SimulatedLLM(model_name="gpt-3.5-06", seed=11, temperature=0.01)
        engine = create_engine("simulated", model="gpt-3.5-06", seed=11, temperature=0.01)
        for prompt in prompts:
            assert engine.complete(prompt) == raw.complete(prompt)
        assert engine.usage.num_calls == raw.usage.num_calls
        assert engine.usage.prompt_tokens == raw.usage.prompt_tokens
        assert engine.usage.completion_tokens == raw.usage.completion_tokens

    def test_capability_flags(self):
        assert not create_engine("simulated").requires_network
        assert create_engine("openai").requires_network
        assert create_engine("openai").supports_json_schema
        assert not create_engine("openai_compatible").supports_json_schema
        assert create_engine("anthropic").supports_json_schema

    def test_describe_is_json_serializable(self):
        import json

        snapshot = create_engine("openai", model="gpt-4").describe()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["engine"] == "openai"
        assert snapshot["provider_model"] == "gpt-4"


class TestProviderModelResolution:
    def test_openai_alias_table(self):
        assert create_engine("openai", model="gpt-3.5-03").provider_model == (
            "gpt-3.5-turbo-0301"
        )

    def test_compatible_passes_logical_name_through(self):
        engine = create_engine("openai_compatible", model="llama2-70b")
        assert engine.provider_model == "llama2-70b"

    def test_explicit_provider_model_wins(self):
        engine = create_engine("openai", model="gpt-3.5-03", provider_model="gpt-4o-mini")
        assert engine.provider_model == "gpt-4o-mini"


class TestEnvResolution:
    def test_defaults_to_simulated(self):
        config = engine_config_from_env(env={})
        assert isinstance(config, SimulatedEngineConfig)
        engine = engine_from_env(env={})
        assert isinstance(engine, SimulatedEngine)

    def test_selects_and_tunes_http_backend(self):
        env = {
            "REPRO_ENGINE": "openai_compatible",
            "REPRO_ENGINE_BASE_URL": "http://localhost:1234/v1",
            "REPRO_ENGINE_MODEL": "my-local-model",
            "REPRO_ENGINE_RPS": "4",
            "REPRO_ENGINE_TPM": "90000",
            "REPRO_ENGINE_MAX_ATTEMPTS": "7",
            "REPRO_ENGINE_TIMEOUT": "12.5",
            "REPRO_ENGINE_JSON_SCHEMA": "true",
        }
        config = engine_config_from_env(env=env)
        assert config.base_url == "http://localhost:1234/v1"
        assert config.provider_model == "my-local-model"
        assert config.requests_per_second == 4.0
        assert config.tokens_per_minute == 90000.0
        assert config.max_attempts == 7
        assert config.timeout_seconds == 12.5
        assert config.json_schema_mode is True

    def test_anthropic_key_env_default(self):
        env = {"REPRO_ENGINE": "anthropic"}
        config = engine_config_from_env(env=env)
        assert isinstance(config, AnthropicEngineConfig)
        assert config.api_key_env == "ANTHROPIC_API_KEY"
        assert config.resolve_api_key({"ANTHROPIC_API_KEY": "sk-a"}) == "sk-a"
        assert config.resolve_api_key({}) is None

    def test_explicit_overrides_beat_env(self):
        env = {"REPRO_ENGINE": "openai", "REPRO_ENGINE_MODEL": "from-env"}
        config = engine_config_from_env(env=env, provider_model="explicit")
        assert config.provider_model == "explicit"

    def test_unknown_env_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            engine_config_from_env(env={"REPRO_ENGINE": "palm"})


class TestCreateLlmContract:
    def test_default_is_simulated_llm(self):
        llm = create_llm("gpt-4", seed=3)
        assert isinstance(llm, SimulatedLLM)
        assert isinstance(llm, SimulatedEngine)

    def test_unknown_model_message_unchanged(self):
        with pytest.raises(
            ValueError,
            match=(
                r"unknown model 'claude-opus'; expected one of: "
                r"gpt-3\.5-03, gpt-3\.5-06, gpt-4, llama2-70b"
            ),
        ):
            create_llm("claude-opus")

    def test_engine_kwarg_routes_to_registry(self):
        llm = create_llm("gpt-3.5-03", engine="openai_compatible")
        assert isinstance(llm, OpenAICompatibleEngine)

    def test_unknown_engine_kwarg_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_llm("gpt-3.5-03", engine="palm")


class TestBatcherConfigEngineField:
    def test_default_round_trips(self):
        config = BatcherConfig()
        assert config.engine == "simulated"
        assert BatcherConfig.from_dict(config.to_dict()) == config
        assert config.to_dict()["engine"] == "simulated"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            BatcherConfig(engine="palm")

    def test_accepts_registered_engines(self):
        for name in available_engines():
            assert BatcherConfig(engine=name).engine == name
