"""Tests for the staged pipeline API: stage composition, execution backends,
``complete_many`` ordering and facade equivalence."""

import threading

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.llm.executors import ConcurrentExecutor, SerialExecutor, create_executor
from repro.llm.simulated import SimulatedLLM
from repro.pipeline import (
    BatchQuestions,
    Evaluate,
    Featurize,
    Inference,
    ParseAnswers,
    Pipeline,
    PipelineContext,
    RenderPrompts,
    SelectDemonstrations,
    StageHook,
)


class TestExecutionBackends:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_concurrent_preserves_input_order(self):
        # Items that finish fast must not overtake slow earlier items.
        import time

        def slow_then_fast(item):
            time.sleep(0.02 if item == 0 else 0.0)
            return item

        results = ConcurrentExecutor(max_workers=4).map(slow_then_fast, range(8))
        assert results == list(range(8))

    def test_concurrent_actually_runs_in_parallel(self):
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(item):
            barrier.wait()  # deadlocks unless two calls are in flight at once
            return item

        assert ConcurrentExecutor(max_workers=2).map(rendezvous, [0, 1]) == [0, 1]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ConcurrentExecutor(max_workers=0)

    def test_create_executor(self):
        assert isinstance(create_executor(1), SerialExecutor)
        concurrent = create_executor(6)
        assert isinstance(concurrent, ConcurrentExecutor)
        assert concurrent.max_workers == 6
        with pytest.raises(ValueError, match="jobs"):
            create_executor(0)

    def test_persistent_pool_reused_across_maps(self):
        with ConcurrentExecutor(max_workers=2, persistent=True) as executor:
            pool = executor._pool
            assert pool is not None
            assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
            assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
            assert executor._pool is pool  # one long-lived pool, not per-call
        assert executor._pool is None  # released on context exit

    def test_map_after_shutdown_rejected(self):
        executor = ConcurrentExecutor(max_workers=2, persistent=True)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            executor.map(lambda x: x, [1, 2])
        # Shutdown also invalidates non-persistent backends (explicit
        # lifecycle errors beat silently recreating pools).
        per_call = ConcurrentExecutor(max_workers=2)
        per_call.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            per_call.map(lambda x: x, [1, 2])


class TestCompleteMany:
    def _prompts(self, dataset):
        from repro.prompting.batch import BatchPromptBuilder

        builder = BatchPromptBuilder(attributes=dataset.attributes)
        questions = list(dataset.splits.test)
        demos = list(dataset.splits.train)[:4]
        return [
            builder.build(questions[i : i + 4], demos).text for i in range(0, 24, 4)
        ]

    def test_serial_matches_loop_of_complete(self, beer_dataset):
        prompts = self._prompts(beer_dataset)
        reference = [SimulatedLLM("gpt-3.5-03", seed=1).complete(t).text for t in prompts]
        llm = SimulatedLLM("gpt-3.5-03", seed=1)
        responses = llm.complete_many(prompts)
        assert [response.text for response in responses] == reference
        assert llm.usage.num_calls == len(prompts)

    def test_concurrent_is_deterministic_and_ordered(self, beer_dataset):
        prompts = self._prompts(beer_dataset)
        serial = SimulatedLLM("gpt-3.5-03", seed=1).complete_many(prompts)
        llm = SimulatedLLM("gpt-3.5-03", seed=1)
        concurrent = llm.complete_many(prompts, executor=ConcurrentExecutor(max_workers=8))
        assert [r.text for r in concurrent] == [r.text for r in serial]
        # Usage totals are order-independent sums, so cost is identical too.
        assert llm.usage.num_calls == len(prompts)
        assert llm.usage.total_tokens == sum(r.total_tokens for r in serial)


class TestPipelineComposition:
    def test_default_stage_order(self):
        assert Pipeline.default().stage_names == (
            "featurize",
            "batch-questions",
            "select-demonstrations",
            "render-prompts",
            "inference",
            "parse-answers",
            "evaluate",
        )

    def test_stages_are_individually_runnable(self, beer_dataset):
        config = BatcherConfig(seed=1, max_questions=24)
        context = PipelineContext.from_dataset(beer_dataset, config)
        Featurize()(context)
        assert context.question_features.shape[0] == 24
        BatchQuestions()(context)
        assert sum(len(batch) for batch in context.batches) == 24
        SelectDemonstrations()(context)
        assert context.selection.num_labeled > 0
        RenderPrompts()(context)
        assert len(context.prompts) == len(context.batches)
        Inference()(context)
        assert len(context.responses) == len(context.prompts)
        ParseAnswers()(context)
        assert len(context.predictions) == 24
        Evaluate()(context)
        assert context.result is not None

    def test_manual_stage_run_matches_facade(self, beer_dataset):
        config = BatcherConfig(seed=3, max_questions=32)
        facade = BatchER(config).run(beer_dataset)
        context = Pipeline.default().run(PipelineContext.from_dataset(beer_dataset, config))
        assert context.result.metrics == facade.metrics
        assert context.result.predictions == facade.predictions
        assert context.result.cost == facade.cost

    def test_missing_prerequisite_raises(self, beer_dataset):
        context = PipelineContext.from_dataset(beer_dataset, BatcherConfig(max_questions=8))
        with pytest.raises(ValueError, match="featurize"):
            BatchQuestions()(context)
        with pytest.raises(ValueError, match="parse-answers"):
            Evaluate()(context)

    def test_run_until_stops_early(self, beer_dataset):
        config = BatcherConfig(seed=1, max_questions=16)
        context = PipelineContext.from_dataset(beer_dataset, config)
        Pipeline.default().run_until(context, "batch-questions")
        assert context.batches is not None
        assert context.prompts is None
        assert context.result is None

    def test_run_after_run_until_resumes_without_recharging(self, beer_dataset):
        config = BatcherConfig(seed=1, max_questions=24)
        fresh = BatchER(config).run(beer_dataset)
        pipeline = Pipeline.default()
        context = PipelineContext.from_dataset(beer_dataset, config)
        pipeline.run_until(context, "select-demonstrations")
        pipeline.run(context)  # must resume, not re-execute the paid prefix
        assert context.result.cost == fresh.cost
        assert context.result.predictions == fresh.predictions
        assert [timing.stage for timing in context.timings] == list(pipeline.stage_names)
        # Repeating run() on a finished context is a no-op.
        pipeline.run(context)
        assert len(context.timings) == len(pipeline.stage_names)
        assert context.result.cost == fresh.cost

    def test_run_until_unknown_stage_rejected(self, beer_dataset):
        context = PipelineContext.from_dataset(beer_dataset, BatcherConfig(max_questions=8))
        with pytest.raises(ValueError, match="unknown stage"):
            Pipeline.default().run_until(context, "nonexistent")

    def test_timings_and_hooks(self, beer_dataset):
        events = []

        class Recorder(StageHook):
            def on_stage_start(self, stage, context):
                events.append(("start", stage.name))

            def on_stage_end(self, stage, context, seconds):
                events.append(("end", stage.name))
                assert seconds >= 0.0

        config = BatcherConfig(seed=1, max_questions=16)
        pipeline = Pipeline.default(hooks=[Recorder()])
        context = pipeline.run(PipelineContext.from_dataset(beer_dataset, config))
        assert [timing.stage for timing in context.timings] == list(pipeline.stage_names)
        assert events[0] == ("start", "featurize")
        assert events[-1] == ("end", "evaluate")
        assert len(events) == 2 * len(pipeline.stage_names)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])


class TestSerialVsConcurrentDeterminism:
    def test_identical_run_results_on_beer(self, beer_dataset):
        config = BatcherConfig(seed=1)
        serial = BatchER(config, executor=SerialExecutor()).run(beer_dataset)
        concurrent = BatchER(config, executor=ConcurrentExecutor(max_workers=8)).run(
            beer_dataset
        )
        default = BatchER(config).run(beer_dataset)
        for other in (concurrent, default):
            assert other.predictions == serial.predictions
            assert other.metrics == serial.metrics
            assert other.cost == serial.cost
            assert other.num_unanswered == serial.num_unanswered

    def test_facade_pipeline_is_inspectable(self):
        framework = BatchER(BatcherConfig(), executor=ConcurrentExecutor(2))
        pipeline = framework.build_pipeline()
        inference = [stage for stage in pipeline.stages if isinstance(stage, Inference)]
        assert len(inference) == 1
        assert isinstance(inference[0].executor, ConcurrentExecutor)
