"""Tests for the monetary cost model."""

import pytest

from repro.cost import CostTracker, LABEL_COST_PER_PAIR, api_cost, labeling_cost
from repro.cost.labeling_cost import COST_PER_LABELING_TASK, PAIRS_PER_LABELING_TASK
from repro.cost.tracker import CostBreakdown
from repro.llm.base import UsageRecord, UsageTracker


class TestLabelingCost:
    def test_paper_rate(self):
        # $0.08 per ten-pair task -> $0.008 per pair.
        assert LABEL_COST_PER_PAIR == pytest.approx(COST_PER_LABELING_TASK / PAIRS_PER_LABELING_TASK)

    def test_zero_pairs(self):
        assert labeling_cost(0) == 0.0

    def test_linear_in_pairs(self):
        assert labeling_cost(100) == pytest.approx(0.8)
        assert labeling_cost(8) == pytest.approx(0.064)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            labeling_cost(-1)


class TestApiCost:
    def test_priced_from_usage(self):
        usage = UsageTracker()
        usage.add(UsageRecord("gpt-3.5-03", prompt_tokens=10_000, completion_tokens=1_000))
        assert api_cost("gpt-3.5-03", usage) == pytest.approx(0.012)

    def test_gpt4_costs_more_for_same_usage(self):
        usage = UsageTracker()
        usage.add(UsageRecord("x", prompt_tokens=5_000, completion_tokens=0))
        assert api_cost("gpt-4", usage) > api_cost("gpt-3.5-03", usage)


class TestCostTracker:
    def test_breakdown_combines_components(self):
        tracker = CostTracker("gpt-3.5-03")
        usage = UsageTracker()
        usage.add(UsageRecord("gpt-3.5-03", prompt_tokens=2_000, completion_tokens=500))
        tracker.attach_usage(usage)
        tracker.record_labeled_pairs(25)
        breakdown = tracker.breakdown()
        assert breakdown.api_cost == pytest.approx(0.003)
        assert breakdown.labeling_cost == pytest.approx(0.2)
        assert breakdown.total_cost == pytest.approx(0.203)
        assert breakdown.num_labeled_pairs == 25
        assert breakdown.prompt_tokens == 2_000
        assert breakdown.num_llm_calls == 1

    def test_labeled_pairs_accumulate(self):
        tracker = CostTracker("gpt-4")
        tracker.record_labeled_pairs(5)
        tracker.record_labeled_pairs(3)
        assert tracker.breakdown().num_labeled_pairs == 8

    def test_negative_label_count_rejected(self):
        tracker = CostTracker("gpt-4")
        with pytest.raises(ValueError):
            tracker.record_labeled_pairs(-2)

    def test_breakdown_without_usage(self):
        tracker = CostTracker("gpt-4")
        breakdown = tracker.breakdown()
        assert breakdown.api_cost == 0.0
        assert breakdown.total_cost == 0.0


class TestCostBreakdownArithmetic:
    def _breakdown(self, api, label, **kwargs):
        return CostBreakdown(api_cost=api, labeling_cost=label, **kwargs)

    def test_add_is_component_wise(self):
        left = self._breakdown(0.1, 0.2, prompt_tokens=100, num_llm_calls=2)
        right = self._breakdown(0.3, 0.4, completion_tokens=50, num_labeled_pairs=5)
        total = left + right
        assert total.api_cost == pytest.approx(0.4)
        assert total.labeling_cost == pytest.approx(0.6)
        assert total.prompt_tokens == 100
        assert total.completion_tokens == 50
        assert total.num_llm_calls == 2
        assert total.num_labeled_pairs == 5
        assert total.total_cost == pytest.approx(1.0)

    def test_sum_over_breakdowns(self):
        # sum() starts from 0; __radd__ makes the builtin aggregate work.
        breakdowns = [self._breakdown(0.1, 0.0, num_llm_calls=1) for _ in range(3)]
        total = sum(breakdowns)
        assert total.api_cost == pytest.approx(0.3)
        assert total.num_llm_calls == 3
        assert sum([]) == 0  # untouched degenerate case

    def test_zero_is_additive_identity(self):
        breakdown = self._breakdown(0.5, 0.25, prompt_tokens=10)
        assert CostBreakdown.zero() + breakdown == breakdown

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            self._breakdown(0.1, 0.1) + 1.0

    def test_to_dict_is_json_shaped(self):
        payload = self._breakdown(0.1, 0.2, prompt_tokens=7, num_llm_calls=1).to_dict()
        assert payload["api_cost"] == pytest.approx(0.1)
        assert payload["total_cost"] == pytest.approx(0.3)
        assert payload["prompt_tokens"] == 7
        assert set(payload) == {
            "api_cost",
            "labeling_cost",
            "total_cost",
            "prompt_tokens",
            "completion_tokens",
            "num_llm_calls",
            "num_labeled_pairs",
        }
