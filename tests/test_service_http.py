"""Tests for the stdlib HTTP front end and the repro-serve CLI plumbing."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import BatcherConfig
from repro.service import ResolutionService, ServiceConfig
from repro.service.cli import main as serve_main
from repro.service.http import BadRequest, ServiceHTTPServer, pairs_from_json


@pytest.fixture(scope="module")
def http_server(beer_dataset):
    config = ServiceConfig(
        batcher=BatcherConfig(seed=1), max_batch_size=8, max_wait_seconds=0.02
    )
    service = ResolutionService.from_dataset(beer_dataset, config).start()
    server = ServiceHTTPServer(service, port=0).serve_in_background()
    yield server
    server.shutdown()
    server.server_close()
    service.stop()


def _get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.address + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, http_server):
        status, payload = _get(http_server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["running"] is True
        assert payload["pool_size"] > 0

    def test_resolve_roundtrip(self, http_server, beer_dataset):
        pair = beer_dataset.splits.test[0]
        status, payload = _post(
            http_server,
            "/resolve",
            {
                "pairs": [
                    {
                        "pair_id": "q1",
                        "left": dict(pair.left.values),
                        "right": dict(pair.right.values),
                    }
                ]
            },
        )
        assert status == 200
        [resolution] = payload["resolutions"]
        assert resolution["pair_id"] == "q1"
        assert resolution["label"] in (0, 1)
        assert resolution["label_name"] in ("MATCH", "NON_MATCH")
        assert isinstance(resolution["answered"], bool)

    def test_resolve_without_pair_id_gets_generated_one(self, http_server):
        status, payload = _post(
            http_server,
            "/resolve",
            {"pairs": [{"left": {"name": "pale ale"}, "right": {"name": "Pale Ale"}}]},
        )
        assert status == 200
        assert payload["resolutions"][0]["pair_id"].startswith("http-")

    def test_stats_reflects_resolved_requests(self, http_server):
        status, payload = _get(http_server, "/stats")
        assert status == 200
        assert payload["resolved"] >= 1
        assert payload["cost"]["total_cost"] >= 0.0
        assert "cache_hit_rate" in payload

    def test_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(http_server, "/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(http_server, "/resolve", {"not-pairs": []})
        assert excinfo.value.code == 400
        assert "pairs" in json.loads(excinfo.value.read())["error"]

    def test_non_string_attribute_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                http_server,
                "/resolve",
                {"pairs": [{"left": {"abv": 5.2}, "right": {"abv": "5.2"}}]},
            )
        assert excinfo.value.code == 400


class TestPayloadParsing:
    def test_rejects_non_object_entries(self):
        with pytest.raises(BadRequest, match="must be an object"):
            pairs_from_json({"pairs": ["nope"]})

    def test_rejects_missing_side(self):
        with pytest.raises(BadRequest, match="'right'"):
            pairs_from_json({"pairs": [{"left": {"name": "x"}}]})

    def test_accepts_null_values(self):
        [pair] = pairs_from_json(
            {"pairs": [{"left": {"name": "x", "abv": None}, "right": {"name": "y"}}]}
        )
        assert pair.left.value("abv") is None
        assert pair.right.value("name") == "y"


class TestSelfTestCLI:
    def test_self_test_exits_zero_and_reports_ok(self, capsys):
        assert serve_main(["--self-test"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["requests"] == 100
        assert all(report["checks"].values())
        assert report["first_pass"]["llm_calls"] < report["requests"]
