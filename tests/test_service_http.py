"""Tests for the stdlib HTTP front end and the repro-serve CLI plumbing."""

import http.client
import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.core.config import BatcherConfig
from repro.service import ResolutionService, ServiceConfig, TenantConfig
from repro.service.cli import main as serve_main
from repro.service.http import (
    MAX_BODY_BYTES,
    BadRequest,
    ServiceHTTPServer,
    pairs_from_json,
)


@pytest.fixture(scope="module")
def http_server(beer_dataset):
    config = ServiceConfig(
        batcher=BatcherConfig(seed=1), max_batch_size=8, max_wait_seconds=0.02
    )
    service = ResolutionService.from_dataset(beer_dataset, config).start()
    server = ServiceHTTPServer(service, port=0).serve_in_background()
    yield server
    server.shutdown()
    server.server_close()
    service.stop()


def _get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    return _post_raw(server, path, json.dumps(payload).encode("utf-8"))


def _post_raw(server, path, body, headers=None):
    request = urllib.request.Request(
        server.address + path,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, http_server):
        status, payload = _get(http_server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["running"] is True
        assert payload["pool_size"] > 0

    def test_resolve_roundtrip(self, http_server, beer_dataset):
        pair = beer_dataset.splits.test[0]
        status, payload = _post(
            http_server,
            "/resolve",
            {
                "pairs": [
                    {
                        "pair_id": "q1",
                        "left": dict(pair.left.values),
                        "right": dict(pair.right.values),
                    }
                ]
            },
        )
        assert status == 200
        [resolution] = payload["resolutions"]
        assert resolution["pair_id"] == "q1"
        assert resolution["label"] in (0, 1)
        assert resolution["label_name"] in ("MATCH", "NON_MATCH")
        assert isinstance(resolution["answered"], bool)

    def test_resolve_without_pair_id_gets_generated_one(self, http_server):
        status, payload = _post(
            http_server,
            "/resolve",
            {"pairs": [{"left": {"name": "pale ale"}, "right": {"name": "Pale Ale"}}]},
        )
        assert status == 200
        assert payload["resolutions"][0]["pair_id"].startswith("http-")

    def test_stats_reflects_resolved_requests(self, http_server):
        status, payload = _get(http_server, "/stats")
        assert status == 200
        assert payload["resolved"] >= 1
        assert payload["cost"]["total_cost"] >= 0.0
        assert "cache_hit_rate" in payload

    def test_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(http_server, "/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(http_server, "/resolve", {"not-pairs": []})
        assert excinfo.value.code == 400
        assert "pairs" in json.loads(excinfo.value.read())["error"]

    def test_non_string_attribute_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                http_server,
                "/resolve",
                {"pairs": [{"left": {"abv": 5.2}, "right": {"abv": "5.2"}}]},
            )
        assert excinfo.value.code == 400


class TestErrorPaths:
    """Exhaustive HTTP error mapping: 400 / 429 / 503 paths."""

    def test_invalid_json_body_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(http_server, "/resolve", b'{"pairs": [unterminated')
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_non_utf8_body_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(http_server, "/resolve", b'\xff\xfe{"pairs": []}')
        assert excinfo.value.code == 400

    def test_oversized_payload_400(self, http_server):
        padding = "x" * (MAX_BODY_BYTES + 1)
        body = json.dumps({"pairs": [], "padding": padding}).encode("utf-8")
        assert len(body) > MAX_BODY_BYTES
        try:
            _post_raw(http_server, "/resolve", body)
            raise AssertionError("oversized payload must not succeed")
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "bytes" in json.loads(error.read())["error"]
        except (urllib.error.URLError, ConnectionError):
            # Equally valid rejection: the server answered 400 and closed the
            # connection before the client finished streaming the huge body.
            pass

    def test_empty_body_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(http_server, "/resolve", b"")
        assert excinfo.value.code == 400

    def test_invalid_content_length_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(
                http_server,
                "/resolve",
                b'{"pairs": []}',
                headers={"Content-Length": "not-a-number"},
            )
        assert excinfo.value.code == 400

    def test_post_to_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(http_server, "/resolve-all", {"pairs": []})
        assert excinfo.value.code == 404

    def test_overload_503_with_retry_after(self, beer_dataset):
        # A never-started consumer with a one-slot queue: the first submission
        # occupies the slot, the HTTP request then hits backpressure.
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            queue_capacity=1,
            admission_timeout_seconds=0.01,
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        try:
            blocker = beer_dataset.splits.test[0].without_label()
            service.submit(blocker)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server,
                    "/resolve",
                    {"pairs": [{"left": {"name": "a"}, "right": {"name": "b"}}]},
                )
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_cost_budget_rejection_429(self, beer_dataset):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=8,
            max_wait_seconds=0.02,
            cost_budget=1e-9,
        )
        service = ResolutionService.from_dataset(beer_dataset, config).start()
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        try:
            first = beer_dataset.splits.test[0]
            payload = {
                "pairs": [
                    {"left": dict(first.left.values), "right": dict(first.right.values)}
                ]
            }
            # Admission checks recorded cost: the first request is admitted
            # and exhausts the (tiny) budget...
            status, _ = _post(server, "/resolve", payload)
            assert status == 200
            # ...so a new, uncached pair is now rejected with 429.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server,
                    "/resolve",
                    {"pairs": [{"left": {"name": "brand new"}, "right": {"name": "pair"}}]},
                )
            assert excinfo.value.code == 429
            assert "budget" in json.loads(excinfo.value.read())["error"]
            # The exhausted service still serves cached contents.
            status, _ = _post(server, "/resolve", payload)
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_stopped_service_503(self, beer_dataset):
        config = ServiceConfig(batcher=BatcherConfig(seed=1))
        service = ResolutionService.from_dataset(beer_dataset, config).start()
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        try:
            service.stop()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server,
                    "/resolve",
                    {"pairs": [{"left": {"name": "x"}, "right": {"name": "y"}}]},
                )
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()


class TestHardening:
    """Front-end hardening: HEAD probes, slowloris guard, keep-alive,
    connection-close contract and the derived backpressure Retry-After."""

    @pytest.mark.parametrize("path", ["/healthz", "/readyz", "/stats", "/metrics"])
    def test_head_mirrors_get_without_body(self, http_server, path):
        get = urllib.request.urlopen(http_server.address + path, timeout=10)
        request = urllib.request.Request(http_server.address + path, method="HEAD")
        head = urllib.request.urlopen(request, timeout=10)
        assert head.status == get.status == 200
        assert head.read() == b""
        # HEAD advertises the length of the body a GET would have carried.
        assert int(head.headers["Content-Length"]) > 0
        assert head.headers["Content-Type"] == get.headers["Content-Type"]

    def test_head_unknown_path_404(self, http_server):
        request = urllib.request.Request(http_server.address + "/nope", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404
        assert excinfo.value.read() == b""

    def test_half_sent_body_answered_408(self, http_server):
        # Slowloris regression: promise 1000 bytes, deliver 20, stall.  The
        # pre-fix handler blocked in rfile.read() forever; the fixed one
        # answers 408 once the body read deadline expires.
        server = ServiceHTTPServer(
            http_server.service, port=0, body_read_timeout=0.3
        ).serve_in_background()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /resolve HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n"
                    b"\r\n"
                    b'{"pairs": [{"left"'  # 20 of the promised 1000 bytes
                )
                sock.settimeout(10)
                response = sock.recv(65536).decode("latin-1")
            assert response.startswith("HTTP/1.1 408")
            assert "stalled" in response
            assert "Connection: close" in response
        finally:
            server.shutdown()
            server.server_close()

    def test_rejects_nonpositive_body_read_timeout(self, http_server):
        with pytest.raises(ValueError, match="body_read_timeout"):
            ServiceHTTPServer(http_server.service, port=0, body_read_timeout=0.0)

    def test_keepalive_serves_sequential_requests_on_one_connection(
        self, http_server
    ):
        host, port = http_server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request("GET", "/healthz")
            first = connection.getresponse()
            assert first.status == 200 and json.loads(first.read())["live"] is True
            sock = connection.sock
            assert sock is not None
            body = json.dumps(
                {"pairs": [{"left": {"name": "ka"}, "right": {"name": "KA"}}]}
            )
            connection.request(
                "POST", "/resolve", body, {"Content-Type": "application/json"}
            )
            second = connection.getresponse()
            assert second.status == 200
            assert len(json.loads(second.read())["resolutions"]) == 1
            # Same socket object: the second request rode the first's
            # keep-alive connection instead of reconnecting.
            assert connection.sock is sock
        finally:
            connection.close()

    def test_error_response_closes_connection(self, http_server):
        host, port = http_server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/resolve",
                '{"pairs": [broken',
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.headers["Connection"] == "close"
            response.read()
            assert response.will_close
        finally:
            connection.close()

    def test_backpressure_retry_after_derived_from_backlog(self, beer_dataset):
        # Eight queued pairs at one pair per 2s flush -> the client is told to
        # come back in ~16s, not a flat second.
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=1,
            max_wait_seconds=2.0,
            queue_capacity=8,
            admission_timeout_seconds=0.01,
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        try:
            for pair in list(beer_dataset.splits.test)[:8]:
                service.submit(pair.without_label())
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server,
                    "/resolve",
                    {"pairs": [{"left": {"name": "a"}, "right": {"name": "b"}}]},
                )
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "16"
        finally:
            server.shutdown()
            server.server_close()
            service.stop()


class TestTenantsOverHTTP:
    """The X-API-Key tenant layer exercised through the HTTP front end."""

    @pytest.fixture()
    def tenant_server(self, beer_dataset):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=8,
            max_wait_seconds=0.02,
            tenants=(
                TenantConfig(name="acme", api_key="k-acme"),
                TenantConfig(
                    name="throttled",
                    api_key="k-throttled",
                    requests_per_second=0.001,
                    burst=1.0,
                ),
                TenantConfig(name="broke", api_key="k-broke", cost_budget=1e-9),
            ),
            require_api_key=True,
        )
        service = ResolutionService.from_dataset(beer_dataset, config).start()
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        yield server
        server.shutdown()
        server.server_close()
        service.stop()

    PAYLOAD = {"pairs": [{"left": {"name": "lager"}, "right": {"name": "Lager"}}]}

    def test_valid_key_resolves(self, tenant_server):
        status, body = _post_raw(
            tenant_server,
            "/resolve",
            json.dumps(self.PAYLOAD).encode(),
            headers={"X-API-Key": "k-acme"},
        )
        assert status == 200
        assert len(body["resolutions"]) == 1

    def test_missing_key_401_when_required(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(tenant_server, "/resolve", self.PAYLOAD)
        assert excinfo.value.code == 401

    def test_wrong_key_401(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(
                tenant_server,
                "/resolve",
                json.dumps(self.PAYLOAD).encode(),
                headers={"X-API-Key": "k-wrong"},
            )
        assert excinfo.value.code == 401

    def test_quota_exhausted_429_with_retry_after(self, tenant_server):
        status, _ = _post_raw(
            tenant_server,
            "/resolve",
            json.dumps(self.PAYLOAD).encode(),
            headers={"X-API-Key": "k-throttled"},
        )
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(
                tenant_server,
                "/resolve",
                json.dumps(self.PAYLOAD).encode(),
                headers={"X-API-Key": "k-throttled"},
            )
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        assert "quota" in json.loads(excinfo.value.read())["error"]

    def test_tenant_budget_exhausted_429_but_cache_still_served(self, tenant_server):
        # First (uncached) request is admitted and spends the tiny budget...
        status, _ = _post_raw(
            tenant_server,
            "/resolve",
            json.dumps(self.PAYLOAD).encode(),
            headers={"X-API-Key": "k-broke"},
        )
        assert status == 200
        # ...a new uncached pair is rejected 429...
        fresh = {"pairs": [{"left": {"name": "saison"}, "right": {"name": "Gose"}}]}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(
                tenant_server,
                "/resolve",
                json.dumps(fresh).encode(),
                headers={"X-API-Key": "k-broke"},
            )
        assert excinfo.value.code == 429
        assert "budget" in json.loads(excinfo.value.read())["error"]
        # ...but the cached pair still resolves (degrade-to-cache).
        status, _ = _post_raw(
            tenant_server,
            "/resolve",
            json.dumps(self.PAYLOAD).encode(),
            headers={"X-API-Key": "k-broke"},
        )
        assert status == 200

    def test_stats_and_metrics_carry_tenant_breakdown(self, tenant_server):
        _post_raw(
            tenant_server,
            "/resolve",
            json.dumps(self.PAYLOAD).encode(),
            headers={"X-API-Key": "k-acme"},
        )
        status, stats = _get(tenant_server, "/stats")
        assert status == 200
        assert "acme" in stats["tenants"]
        assert stats["tenants"]["acme"]["admitted"] >= 1
        with urllib.request.urlopen(
            tenant_server.address + "/metrics", timeout=10
        ) as response:
            exposition = response.read().decode()
        assert 'repro_service_requests_total{tenant="acme",status="200"}' in exposition


class TestBulkEndpoint:
    def test_bulk_roundtrip(self, http_server, beer_dataset):
        pairs = [pair.without_label() for pair in list(beer_dataset.splits.test)[:6]]
        payload = {
            "pairs": [
                {
                    "pair_id": pair.pair_id,
                    "left": dict(pair.left.values),
                    "right": dict(pair.right.values),
                }
                for pair in pairs
            ],
            "shards": 2,
        }
        status, body = _post(http_server, "/bulk", payload)
        assert status == 200
        assert [entry["pair_id"] for entry in body["resolutions"]] == [
            pair.pair_id for pair in pairs
        ]

    def test_bulk_without_shards_field(self, http_server):
        status, body = _post(
            http_server,
            "/bulk",
            {"pairs": [{"left": {"name": "stout"}, "right": {"name": "Stout"}}]},
        )
        assert status == 200
        assert len(body["resolutions"]) == 1

    @pytest.mark.parametrize("shards", [0, -3, 1.5, "four", True])
    def test_bulk_rejects_invalid_shards_400(self, http_server, shards):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                http_server,
                "/bulk",
                {
                    "pairs": [{"left": {"name": "a"}, "right": {"name": "b"}}],
                    "shards": shards,
                },
            )
        assert excinfo.value.code == 400
        assert "shards" in json.loads(excinfo.value.read())["error"]

    def test_bulk_ticks_engine_counters_in_stats(self, http_server):
        _post(
            http_server,
            "/bulk",
            {"pairs": [{"left": {"name": "porter"}, "right": {"name": "Porter"}}]},
        )
        status, payload = _get(http_server, "/stats")
        assert status == 200
        assert payload["engine"]["bulk_requests"] >= 1
        assert payload["engine"]["bulk_pairs"] >= 1


class TestPayloadParsing:
    def test_rejects_non_object_entries(self):
        with pytest.raises(BadRequest, match="must be an object"):
            pairs_from_json({"pairs": ["nope"]})

    def test_rejects_missing_side(self):
        with pytest.raises(BadRequest, match="'right'"):
            pairs_from_json({"pairs": [{"left": {"name": "x"}}]})

    def test_accepts_null_values(self):
        [pair] = pairs_from_json(
            {"pairs": [{"left": {"name": "x", "abv": None}, "right": {"name": "y"}}]}
        )
        assert pair.left.value("abv") is None
        assert pair.right.value("name") == "y"


class TestSelfTestCLI:
    def test_self_test_exits_zero_and_reports_ok(self, capsys):
        assert serve_main(["--self-test"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["requests"] == 100
        assert all(report["checks"].values())
        assert report["first_pass"]["llm_calls"] < report["requests"]
