"""Integration tests: the full BatchER pipeline and the standard-prompting pipeline."""

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.core.standard import StandardPromptingER
from repro.data.schema import MatchLabel
from repro.llm.simulated import SimulatedLLM


class TestBatchERRun:
    def test_default_run_produces_consistent_result(self, beer_dataset):
        config = BatcherConfig(seed=1)
        result = BatchER(config).run(beer_dataset)
        assert result.dataset == "Beer"
        assert result.method == "batcher/diverse+covering"
        assert result.num_questions == len(beer_dataset.splits.test)
        assert len(result.predictions) == result.num_questions
        assert all(isinstance(label, MatchLabel) for label in result.predictions)
        assert result.num_batches == -(-result.num_questions // config.batch_size)
        assert result.cost.num_llm_calls == result.num_batches
        assert result.cost.api_cost > 0.0
        assert result.cost.num_labeled_pairs > 0
        assert 0.0 <= result.metrics.f1 <= 100.0

    def test_max_questions_cap(self, beer_dataset):
        result = BatchER(BatcherConfig(seed=1, max_questions=24)).run(beer_dataset)
        assert result.num_questions == 24
        assert result.num_batches == 3

    def test_summary_row_fields(self, beer_dataset):
        result = BatchER(BatcherConfig(seed=1, max_questions=16)).run(beer_dataset)
        summary = result.summary()
        for key in ("dataset", "method", "f1", "api_cost", "label_cost", "total_cost", "questions"):
            assert key in summary

    def test_deterministic_given_seed(self, beer_dataset):
        config = BatcherConfig(seed=5, max_questions=40)
        first = BatchER(config).run(beer_dataset)
        second = BatchER(config).run(beer_dataset)
        assert first.metrics.f1 == second.metrics.f1
        assert first.predictions == second.predictions
        assert first.cost.api_cost == second.cost.api_cost

    def test_injected_llm_is_used_and_reset(self, beer_dataset):
        llm = SimulatedLLM("gpt-3.5-03", seed=2)
        config = BatcherConfig(seed=2, max_questions=16)
        BatchER(config, llm=llm).run(beer_dataset)
        first_calls = llm.usage.num_calls
        BatchER(config, llm=llm).run(beer_dataset)
        assert llm.usage.num_calls == first_calls  # usage reset between runs

    def test_every_design_choice_runs(self, beer_dataset):
        for batching in ("random", "similar", "diverse"):
            for selection in ("fixed", "topk-batch", "topk-question", "covering"):
                config = BatcherConfig(
                    batching=batching, selection=selection, seed=1, max_questions=24
                )
                result = BatchER(config).run(beer_dataset)
                assert result.num_questions == 24, (batching, selection)

    def test_semantic_extractor_pipeline(self, beer_dataset):
        config = BatcherConfig(feature_extractor="semantic", seed=1, max_questions=24)
        result = BatchER(config).run(beer_dataset)
        assert result.num_questions == 24

    def test_run_many(self, beer_dataset, fz_dataset):
        results = BatchER(BatcherConfig(seed=1, max_questions=16)).run_many(
            [beer_dataset, fz_dataset]
        )
        assert [result.dataset for result in results] == ["Beer", "FZ"]


class TestStandardPromptingRun:
    def test_one_llm_call_per_question(self, beer_dataset):
        config = BatcherConfig(seed=1, max_questions=20)
        result = StandardPromptingER(config).run(beer_dataset)
        assert result.cost.num_llm_calls == 20
        assert result.num_questions == 20
        assert result.cost.num_labeled_pairs <= config.num_demonstrations

    def test_explicit_demonstrations_must_be_labeled(self, beer_dataset):
        unlabeled = [pair.without_label() for pair in list(beer_dataset.splits.train)[:4]]
        pipeline = StandardPromptingER(BatcherConfig(seed=1, max_questions=8), demonstrations=unlabeled)
        with pytest.raises(ValueError, match="labeled"):
            pipeline.run(beer_dataset)

    def test_batch_prompting_is_cheaper_than_standard(self, beer_dataset):
        config = BatcherConfig(batching="random", selection="fixed", seed=1)
        standard = StandardPromptingER(config).run(beer_dataset)
        batch = BatchER(config).run(beer_dataset)
        # Finding 1: multi-x API cost saving at batch size 8.
        assert standard.cost.api_cost / batch.cost.api_cost > 3.0

    def test_covering_labels_less_than_topk_question(self, beer_dataset):
        covering = BatchER(BatcherConfig(selection="covering", seed=1)).run(beer_dataset)
        topk = BatchER(BatcherConfig(selection="topk-question", seed=1)).run(beer_dataset)
        # Finding 2: the covering strategy saves labeling cost.
        assert covering.cost.labeling_cost < topk.cost.labeling_cost

    def test_empty_test_split_rejected(self, beer_dataset):
        from dataclasses import replace

        from repro.data.schema import CandidateSet, DatasetSplits

        empty_test = replace(
            beer_dataset,
            splits=DatasetSplits(
                train=beer_dataset.splits.train,
                validation=beer_dataset.splits.validation,
                test=CandidateSet(()),
            ),
        )
        with pytest.raises(ValueError, match="empty test split"):
            BatchER(BatcherConfig(seed=1)).run(empty_test)
