"""Unit and property-based tests for the string similarity functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    SIMILARITY_FUNCTIONS,
    available_similarity_functions,
    cosine_token_similarity,
    get_similarity_function,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    monge_elkan_similarity,
    overlap_coefficient,
    tokenize_value,
)

short_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=" -."),
    max_size=30,
)


class TestTokenize:
    def test_basic_tokenization(self):
        assert tokenize_value("Here Comes The Fuzz [Explicit]") == [
            "here", "comes", "the", "fuzz", "explicit",
        ]

    def test_numbers_and_punctuation(self):
        assert tokenize_value("GPT-3.5, v0613!") == ["gpt", "3", "5", "v0613"]

    def test_none_and_empty(self):
        assert tokenize_value(None) == []
        assert tokenize_value("") == []
        assert tokenize_value("   ") == []


class TestLevenshtein:
    def test_identical_strings_have_zero_distance(self):
        assert levenshtein_distance("entity", "entity") == 0

    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_versus_nonempty(self):
        assert levenshtein_distance("", "abcd") == 4
        assert levenshtein_distance("abcd", "") == 4

    def test_case_insensitive(self):
        assert levenshtein_distance("IPhone", "iphone") == 0

    def test_ratio_of_identical_strings_is_one(self):
        assert levenshtein_ratio("iphone-13", "iphone-13") == pytest.approx(1.0)

    def test_ratio_of_disjoint_strings(self):
        # Eq. 5: LR = 1 - LED / (len(a) + len(b)); replacing every character
        # costs len(a) edits, so fully disjoint equal-length strings score 0.5.
        assert levenshtein_ratio("aaaa", "zzzz") == pytest.approx(0.5)
        assert levenshtein_ratio("aaaa", "zzzzzzzz") < 0.5

    def test_ratio_both_empty(self):
        assert levenshtein_ratio("", "") == 1.0
        assert levenshtein_ratio(None, None) == 1.0

    def test_ratio_paper_example(self):
        # The paper's Section VI-G example contrasts LR("listen", "silent")
        # with its character-level Jaccard; under Eq. 5 the edit distance of 4
        # over a total length of 12 gives 1 - 4/12 = 2/3, well below the
        # character-Jaccard similarity of ~0.89 the paper quotes.
        assert levenshtein_ratio("listen", "silent") == pytest.approx(2 / 3)

    @given(short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetry(self, left, right):
        assert levenshtein_distance(left, right) == levenshtein_distance(right, left)

    @given(short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_ratio_bounds(self, left, right):
        assert 0.0 <= levenshtein_ratio(left, right) <= 1.0

    @given(short_text)
    @settings(max_examples=40, deadline=None)
    def test_identity_is_maximal(self, text):
        assert levenshtein_ratio(text, text) == pytest.approx(1.0)


class TestJaccard:
    def test_identical_token_sets(self):
        assert jaccard_similarity("red wireless mouse", "wireless red mouse") == 1.0

    def test_disjoint_token_sets(self):
        assert jaccard_similarity("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap(self):
        # {"here","comes","the","fuzz"} vs {"here","comes","the","fuzz","explicit"}
        assert jaccard_similarity("Here Comes The Fuzz", "Here Comes The Fuzz [Explicit]") == pytest.approx(0.8)

    def test_both_empty_is_one(self):
        assert jaccard_similarity("", "") == 1.0

    def test_paper_example_listen_silent(self):
        # Token-level Jaccard cannot see character order; the paper notes the
        # character-level variant scores "listen"/"silent" much higher than LR.
        assert jaccard_similarity("listen", "silent") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_bounds(self, left, right):
        forward = jaccard_similarity(left, right)
        backward = jaccard_similarity(right, left)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0


class TestOtherSimilarities:
    def test_overlap_coefficient_subset_is_one(self):
        assert overlap_coefficient("samsung tv", "samsung tv 40 inch led") == 1.0

    def test_cosine_identical(self):
        assert cosine_token_similarity("a b c", "a b c") == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        assert cosine_token_similarity("a b", "c d") == 0.0

    def test_jaro_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_jaro_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted >= plain

    def test_monge_elkan_token_alignment(self):
        value = monge_elkan_similarity("samsung galaxy tab", "galaxy tab samsung")
        assert value > 0.9

    @given(short_text, short_text)
    @settings(max_examples=40, deadline=None)
    def test_all_registered_functions_bounded(self, left, right):
        for name in available_similarity_functions():
            value = SIMILARITY_FUNCTIONS[name](left, right)
            assert 0.0 <= value <= 1.0 + 1e-9, name


class TestRegistry:
    def test_lookup_known_function(self):
        assert get_similarity_function("jaccard") is jaccard_similarity

    def test_lookup_unknown_function_raises(self):
        with pytest.raises(KeyError, match="unknown similarity function"):
            get_similarity_function("does-not-exist")

    def test_registry_is_complete(self):
        assert set(available_similarity_functions()) == set(SIMILARITY_FUNCTIONS)
