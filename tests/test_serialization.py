"""Tests for entity serialization (Eq. 1)."""

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.data.serialization import PAIR_SEPARATOR, serialize_pair, serialize_record


def test_serialize_record_orders_by_schema():
    record = Record("A-0", {"title": "iphone-13", "id": "0256"})
    text = serialize_record(record, attributes=("id", "title"))
    assert text == "id: 0256, title: iphone-13"


def test_serialize_record_defaults_to_record_order():
    record = Record("A-0", {"title": "iphone-13", "id": "0256"})
    assert serialize_record(record) == "title: iphone-13, id: 0256"


def test_serialize_record_renders_missing_values_as_empty():
    record = Record("A-0", {"title": "mac14-pro", "id": None})
    assert serialize_record(record, ("title", "id")) == "title: mac14-pro, id: "


def test_serialize_pair_contains_separator_and_both_sides():
    pair = EntityPair(
        pair_id="p0",
        left=Record("A-0", {"title": "gpt3.5-06", "id": "0613"}),
        right=Record("B-0", {"title": "gpt-3.5", "id": "0613"}),
        label=MatchLabel.MATCH,
    )
    text = serialize_pair(pair, ("title", "id"))
    assert PAIR_SEPARATOR in text
    left_text, right_text = text.split(f" {PAIR_SEPARATOR} ")
    assert left_text == "title: gpt3.5-06, id: 0613"
    assert right_text == "title: gpt-3.5, id: 0613"


def test_serialize_pair_respects_schema_argument(beer_dataset):
    pair = beer_dataset.candidate_pairs[0]
    text = serialize_pair(pair, beer_dataset.attributes)
    for attribute in beer_dataset.attributes:
        assert f"{attribute}:" in text
