"""Transport-layer tests: retry/backoff, rate limiting, fault harness.

Everything here runs against the fake clock — zero real sleeps, fully
deterministic — which is the entire point of the harness: a five-attempt
exponential backoff schedule is asserted in microseconds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.faults import FakeClock, FlakyTransport, ScriptedTransport
from repro.engines.transport import (
    RateLimiter,
    RetryPolicy,
    RetryableTransportError,
    RetryingTransport,
    TerminalTransportError,
    TokenBucket,
    TransportRequest,
    error_for_status,
    is_retryable_status,
    retry_reason,
)

REQUEST = TransportRequest(url="https://api.test/v1/x", payload={"k": "v"})


class TestErrorClassification:
    @pytest.mark.parametrize("status", [500, 502, 503, 529, 408, 409, 429])
    def test_retryable_statuses(self, status):
        assert is_retryable_status(status)
        error = error_for_status(status, "boom")
        assert isinstance(error, RetryableTransportError)
        assert error.retryable
        assert error.status == status

    @pytest.mark.parametrize("status", [400, 401, 403, 404, 422])
    def test_terminal_statuses(self, status):
        assert not is_retryable_status(status)
        error = error_for_status(status, "boom")
        assert isinstance(error, TerminalTransportError)
        assert not error.retryable


class TestUrllibErrorMapping:
    """A stalled socket must surface as reason="timeout", not "connection"."""

    @staticmethod
    def _send_with(monkeypatch, raised: BaseException) -> RetryableTransportError:
        import urllib.request

        from repro.engines.transport import UrllibTransport

        def explode(*args, **kwargs):
            raise raised

        monkeypatch.setattr(urllib.request, "urlopen", explode)
        with pytest.raises(RetryableTransportError) as excinfo:
            UrllibTransport(timeout=0.5).send(REQUEST)
        return excinfo.value

    def test_bare_socket_timeout_maps_to_timeout_reason(self, monkeypatch):
        import socket

        error = self._send_with(monkeypatch, socket.timeout("timed out"))
        assert retry_reason(error) == "timeout"

    def test_urlerror_wrapped_timeout_maps_to_timeout_reason(self, monkeypatch):
        # urllib usually wraps the socket timeout inside URLError.reason —
        # the transport must unwrap it rather than labeling it "connection".
        import socket
        import urllib.error

        error = self._send_with(
            monkeypatch, urllib.error.URLError(socket.timeout("timed out"))
        )
        assert retry_reason(error) == "timeout"

    def test_connection_refused_stays_connection_reason(self, monkeypatch):
        import urllib.error

        error = self._send_with(
            monkeypatch, urllib.error.URLError(ConnectionRefusedError(111, "refused"))
        )
        assert retry_reason(error) == "connection"


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0
        )
        import random

        rng = random.Random(0)
        delays = [policy.delay(i, rng) for i in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        import random

        rng = random.Random(42)
        for index in range(200):
            assert 0.75 <= policy.delay(0, rng) <= 1.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.reserve(1.0) == 0.0
        assert bucket.reserve(1.0) == 0.0
        # Bucket empty: the third reservation must wait one full refill.
        assert bucket.reserve(1.0) == pytest.approx(1.0)

    def test_refills_with_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        bucket.reserve(4.0)
        clock.advance(1.0)  # refills 2 units
        assert bucket.reserve(2.0) == 0.0
        assert bucket.reserve(2.0) == pytest.approx(1.0)

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=3.0, clock=clock)
        clock.advance(1000.0)
        bucket.reserve(3.0)
        assert bucket.reserve(1.0) > 0.0

    def test_debt_serializes_concurrent_reservers(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=clock)
        waits = [bucket.reserve(1.0) for _ in range(4)]
        # Each successive reservation inherits the previous debt: waits grow.
        assert waits == pytest.approx([0.0, 1.0, 2.0, 3.0])


class TestRateLimiter:
    def test_requests_per_second_throttles(self):
        clock = FakeClock()
        limiter = RateLimiter(requests_per_second=2.0, clock=clock)
        for _ in range(2):  # burst capacity = 2
            assert limiter.throttle() == 0.0
        wait = limiter.throttle()
        assert wait == pytest.approx(0.5)
        assert limiter.throttled_requests == 1
        assert limiter.waited_seconds == pytest.approx(0.5)
        assert clock.sleeps == [pytest.approx(0.5)]

    def test_tokens_per_minute_throttles(self):
        clock = FakeClock()
        limiter = RateLimiter(tokens_per_minute=600.0, clock=clock)
        assert limiter.throttle(estimated_tokens=600) == 0.0
        wait = limiter.throttle(estimated_tokens=100)
        assert wait == pytest.approx(10.0)  # 100 tokens at 10 tokens/sec

    def test_zero_estimated_tokens_skips_token_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(tokens_per_minute=60.0, clock=clock)
        for _ in range(50):
            assert limiter.throttle(estimated_tokens=0) == 0.0

    def test_no_limits_never_throttles(self):
        limiter = RateLimiter(clock=FakeClock())
        for _ in range(100):
            assert limiter.throttle(estimated_tokens=10_000) == 0.0


class TestScriptedTransport:
    def test_replays_outcomes_in_order(self):
        transport = ScriptedTransport([503, {"ok": True}, 400])
        with pytest.raises(RetryableTransportError):
            transport.send(REQUEST)
        response = transport.send(REQUEST)
        assert response.payload == {"ok": True}
        with pytest.raises(TerminalTransportError):
            transport.send(REQUEST)
        assert transport.calls == 3
        assert len(transport.requests) == 3

    def test_exhausted_script_raises(self):
        transport = ScriptedTransport([])
        with pytest.raises(RuntimeError, match="exhausted"):
            transport.send(REQUEST)

    def test_exception_outcomes_raise_as_is(self):
        sentinel = RetryableTransportError("timeout")
        transport = ScriptedTransport([sentinel])
        with pytest.raises(RetryableTransportError) as caught:
            transport.send(REQUEST)
        assert caught.value is sentinel


class TestFlakyTransport:
    def test_fails_at_exact_ordinals(self):
        inner = ScriptedTransport([{"n": 1}, {"n": 2}, {"n": 3}])
        flaky = FlakyTransport(inner, fail_at={1, 3}, status=503)
        with pytest.raises(RetryableTransportError):
            flaky.send(REQUEST)
        assert flaky.send(REQUEST).payload == {"n": 1}
        with pytest.raises(RetryableTransportError):
            flaky.send(REQUEST)
        assert flaky.send(REQUEST).payload == {"n": 2}
        assert flaky.calls == 4
        assert flaky.injected_failures == 2
        # Failing sends never reached the inner transport.
        assert inner.calls == 2

    def test_rejects_zero_ordinal(self):
        with pytest.raises(ValueError, match="1-based"):
            FlakyTransport(ScriptedTransport([]), fail_at={0})


class TestRetryingTransport:
    def test_retries_transient_then_succeeds(self):
        clock = FakeClock()
        inner = ScriptedTransport([503, 429, {"ok": 1}])
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0),
            clock=clock,
        )
        response = transport.send(REQUEST)
        assert response.payload == {"ok": 1}
        stats = transport.stats()
        assert stats["requests"] == 1
        assert stats["attempts"] == 3
        assert stats["retries"] == 2
        assert stats["failures"] == 0
        # Exponential backoff: 1s then 2s, on the fake clock only.
        assert clock.sleeps == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_terminal_error_never_retries(self):
        clock = FakeClock()
        inner = ScriptedTransport([401])
        transport = RetryingTransport(inner, clock=clock)
        with pytest.raises(TerminalTransportError):
            transport.send(REQUEST)
        assert inner.calls == 1
        assert clock.sleeps == []
        assert transport.stats()["failures"] == 1

    def test_exhausted_attempts_reraise_last_error(self):
        clock = FakeClock()
        inner = ScriptedTransport([503, 503, 503])
        transport = RetryingTransport(
            inner, policy=RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0), clock=clock
        )
        with pytest.raises(RetryableTransportError):
            transport.send(REQUEST)
        assert inner.calls == 3
        assert len(clock.sleeps) == 2  # no sleep after the final failure

    def test_rate_limiter_applies_per_attempt(self):
        clock = FakeClock()
        limiter = RateLimiter(requests_per_second=1.0, clock=clock)
        inner = ScriptedTransport([503, {"ok": 1}])
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            limiter=limiter,
            clock=clock,
        )
        transport.send(REQUEST)
        # First attempt consumed the burst; the retry paid the rate bucket.
        assert limiter.throttled_requests == 1
        assert "throttled_requests" in transport.stats()

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            clock = FakeClock()
            transport = RetryingTransport(
                ScriptedTransport([503, 503, {"ok": 1}]),
                policy=RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.25),
                clock=clock,
                seed=seed,
            )
            transport.send(REQUEST)
            return clock.sleeps

        assert run(7) == run(7)
        assert run(7) != run(8)

    @settings(max_examples=30, deadline=None)
    @given(failures=st.integers(min_value=0, max_value=4))
    def test_attempts_always_equal_failures_plus_one(self, failures):
        clock = FakeClock()
        inner = ScriptedTransport([503] * failures + [{"ok": 1}])
        transport = RetryingTransport(
            inner, policy=RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0), clock=clock
        )
        transport.send(REQUEST)
        stats = transport.stats()
        assert stats["attempts"] == failures + 1
        assert stats["retries"] == failures
        assert stats["requests"] == 1
