"""Property tests for the batch-answer parser on adversarial response formats.

The serving layers cache whatever the parser returns, so the parser's contract
is *parse or report unanswered, never silently misassign*: an answer either
lands on exactly the question its index names, or the question is reported
unanswered — no format trick may move a label onto the wrong question.
"""

import random

import pytest

from repro.data.schema import MatchLabel
from repro.prompting.parser import parse_batch_answers

WORDS = {MatchLabel.MATCH: "Yes", MatchLabel.NON_MATCH: "No"}


def _random_labels(rng, n):
    return [rng.choice((MatchLabel.MATCH, MatchLabel.NON_MATCH)) for _ in range(n)]


class TestShuffledAnswerOrder:
    @pytest.mark.parametrize("seed", range(20))
    def test_indexed_answers_parse_identically_in_any_order(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 12)
        labels = _random_labels(rng, n)
        lines = [f"A{i + 1}: {WORDS[label]}" for i, label in enumerate(labels)]
        rng.shuffle(lines)
        parsed = parse_batch_answers("\n".join(lines), num_questions=n)
        assert list(parsed.labels) == labels
        assert parsed.num_unanswered == 0

    @pytest.mark.parametrize(
        "seed, style",
        list(enumerate(["A{i}: {w}", "Q{i} = {w}", "{i}. {w}", "A{i} - {w}"])),
    )
    def test_every_accepted_style_respects_the_index(self, seed, style):
        rng = random.Random(seed)
        n = 6
        labels = _random_labels(rng, n)
        lines = [style.format(i=i + 1, w=WORDS[label]) for i, label in enumerate(labels)]
        rng.shuffle(lines)
        parsed = parse_batch_answers("\n".join(lines), num_questions=n)
        assert list(parsed.labels) == labels


class TestDuplicateAnswerLines:
    def test_agreeing_duplicates_confirm_the_answer(self):
        text = "A1: Yes\nA2: No\nA1: Yes"
        parsed = parse_batch_answers(text, num_questions=2)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH)

    def test_conflicting_duplicates_report_unanswered_not_last_wins(self):
        text = "A1: Yes\nA2: No\nA1: No"
        parsed = parse_batch_answers(text, num_questions=2)
        assert parsed.labels == (None, MatchLabel.NON_MATCH)
        assert parsed.num_unanswered == 1

    def test_conflicted_slot_is_not_filled_by_bare_answers(self):
        # The bare trailing "yes" must not slide into question 1's vacated
        # slot — that would be exactly the silent misassignment the parser
        # contract forbids.
        text = "A1: Yes\nA1: No\nA2: No\nyes"
        parsed = parse_batch_answers(text, num_questions=3)
        assert parsed.labels[0] is None
        assert parsed.labels[1] is MatchLabel.NON_MATCH
        assert parsed.labels[2] is MatchLabel.MATCH

    def test_conflicted_single_question_skips_the_standard_style_fallback(self):
        text = "A1: Yes\nA1: No\nAnswer: Yes"
        parsed = parse_batch_answers(text, num_questions=1)
        assert parsed.labels == (None,)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_duplicates_never_misassign(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(2, 10)
        labels = _random_labels(rng, n)
        lines = [f"A{i + 1}: {WORDS[label]}" for i, label in enumerate(labels)]
        # Duplicate a few lines; flip some duplicates to manufacture conflicts.
        conflicted = set()
        for _ in range(rng.randint(1, 4)):
            index = rng.randrange(n)
            if rng.random() < 0.5:
                lines.append(f"A{index + 1}: {WORDS[labels[index]]}")
            else:
                flipped = (
                    MatchLabel.NON_MATCH
                    if labels[index] is MatchLabel.MATCH
                    else MatchLabel.MATCH
                )
                lines.append(f"A{index + 1}: {WORDS[flipped]}")
                conflicted.add(index)
        rng.shuffle(lines)
        parsed = parse_batch_answers("\n".join(lines), num_questions=n)
        for index in range(n):
            if index in conflicted:
                assert parsed.labels[index] is None
            else:
                assert parsed.labels[index] is labels[index]


class TestTrailingJunk:
    def test_trailing_prose_does_not_become_an_answer(self):
        text = (
            "A1: Yes, the records agree.\n"
            "A2: No.\n"
            "Note that the remaining questions were ambiguous.\n"
            "Overall the task was straightforward."
        )
        parsed = parse_batch_answers(text, num_questions=3)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH, None)

    def test_out_of_range_indices_are_ignored(self):
        text = "A1: Yes\nA7: No\nA0: Yes"
        parsed = parse_batch_answers(text, num_questions=2)
        assert parsed.labels == (MatchLabel.MATCH, None)

    def test_junk_interleaved_with_answers_changes_nothing(self):
        clean = "A1: No\nA2: Yes\nA3: No"
        noisy = (
            "Sure! Here are my answers.\n"
            "A1: No\n"
            "(see the model number)\n"
            "A2: Yes\n"
            "A3: No\n"
            "Let me know if you need anything else."
        )
        assert parse_batch_answers(noisy, 3).labels == parse_batch_answers(clean, 3).labels

    @pytest.mark.parametrize("seed", range(10))
    def test_fuzzed_junk_lines_never_create_or_move_answers(self, seed):
        rng = random.Random(2000 + seed)
        n = rng.randint(2, 8)
        labels = _random_labels(rng, n)
        lines = [f"A{i + 1}: {WORDS[label]}" for i, label in enumerate(labels)]
        junk = [
            "The following pairs were compared carefully.",
            "Certainly -- here is my reasoning:",
            "NOTE: identifiers differ in formatting only.",
            "####",
            "Answered above.",
        ]
        for _ in range(rng.randint(1, 5)):
            lines.insert(rng.randrange(len(lines) + 1), rng.choice(junk))
        parsed = parse_batch_answers("\n".join(lines), num_questions=n)
        assert list(parsed.labels) == labels
