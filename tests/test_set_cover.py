"""Tests for the greedy (weighted) set cover of Algorithm 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection.set_cover import (
    coverage_value,
    greedy_set_cover,
    greedy_set_cover_eager,
)


class TestCoverageValue:
    def test_counts_distinct_items(self):
        assert coverage_value([{0, 1}, {1, 2}]) == 3
        assert coverage_value([]) == 0


class TestGreedySetCover:
    def test_simple_cover(self):
        coverage = [{0, 1}, {1, 2}, {3}]
        solution = greedy_set_cover(4, coverage)
        covered = set()
        for index in solution.selected:
            covered |= set(coverage[index])
        assert covered == {0, 1, 2, 3}
        assert not solution.uncovered_items

    def test_greedy_prefers_large_sets(self):
        coverage = [{0}, {1}, {2}, {0, 1, 2}]
        solution = greedy_set_cover(3, coverage)
        assert solution.selected == (3,)

    def test_weighted_cover_prefers_cheap_sets(self):
        # Candidate 0 covers everything but is very expensive; candidates 1-2
        # cover everything together at a lower combined efficiency per weight.
        coverage = [{0, 1, 2, 3}, {0, 1}, {2, 3}]
        weights = [100.0, 1.0, 1.0]
        solution = greedy_set_cover(4, coverage, weights)
        assert set(solution.selected) == {1, 2}
        assert solution.total_weight == pytest.approx(2.0)

    def test_uncoverable_items_reported(self):
        coverage = [{0}, {1}]
        solution = greedy_set_cover(3, coverage)
        assert 2 in solution.uncovered_items
        assert solution.covered_items == {0, 1}

    def test_zero_items(self):
        solution = greedy_set_cover(0, [{0, 1}])
        assert solution.selected == ()
        assert not solution.uncovered_items

    def test_no_candidates(self):
        solution = greedy_set_cover(3, [])
        assert solution.selected == ()
        assert solution.uncovered_items == {0, 1, 2}

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            greedy_set_cover(2, [{0}], weights=[1.0, 2.0])

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ValueError):
            greedy_set_cover(2, [{0}, {1}], weights=[1.0, 0.0])

    def test_coverage_outside_universe_ignored(self):
        solution = greedy_set_cover(2, [{0, 5, 9}, {1}])
        assert solution.covered_items == {0, 1}

    def test_greedy_matches_optimum_on_classic_instance(self):
        # Classic set cover instance where greedy happens to be optimal.
        coverage = [{0, 1, 2}, {2, 3}, {4, 5}, {0, 3, 4, 5}]
        solution = greedy_set_cover(6, coverage)
        assert len(solution.selected) == 2

    @given(
        num_items=st.integers(1, 25),
        candidates=st.lists(
            st.frozensets(st.integers(0, 24), max_size=6), min_size=1, max_size=30
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_all_coverable_items_covered(self, num_items, candidates):
        solution = greedy_set_cover(num_items, candidates)
        universe = set(range(num_items))
        coverable = set().union(*[set(c) & universe for c in candidates]) if candidates else set()
        covered = set()
        for index in solution.selected:
            covered |= set(candidates[index]) & universe
        assert covered == coverable
        assert solution.uncovered_items == universe - coverable
        # Selected candidates are distinct.
        assert len(solution.selected) == len(set(solution.selected))

    @given(
        candidates=st.lists(
            st.frozensets(st.integers(0, 14), min_size=1, max_size=5), min_size=1, max_size=15
        ),
        weights=st.lists(st.floats(0.1, 10.0), min_size=15, max_size=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_total_weight_is_sum_of_selected(self, candidates, weights):
        weights = weights[: len(candidates)]
        solution = greedy_set_cover(15, candidates, weights)
        expected = sum(weights[index] for index in solution.selected)
        assert solution.total_weight == pytest.approx(expected)


class TestDeterministicTieBreaking:
    def test_ties_resolve_to_lowest_candidate_index(self):
        # Candidates 1 and 3 tie exactly on (efficiency, gain); the lowest
        # index must win, deterministically.
        coverage = [{0}, {0, 1}, {2}, {0, 1}]
        solution = greedy_set_cover(3, coverage)
        assert solution.selected[0] == 1
        eager = greedy_set_cover_eager(3, coverage)
        assert eager.selected[0] == 1

    def test_weighted_efficiency_tie_prefers_higher_gain(self):
        # Equal efficiency (2/2 == 1/1) but different gain: the higher gain
        # wins; on a full tie the lower index wins.
        coverage = [{0}, {0, 1}, {0, 1}]
        weights = [1.0, 2.0, 2.0]
        for implementation in (greedy_set_cover, greedy_set_cover_eager):
            solution = implementation(2, coverage, weights)
            assert solution.selected[0] == 1


class TestLazyMatchesEager:
    def test_known_instances(self):
        instances = [
            (4, [{0, 1}, {1, 2}, {3}], None),
            (4, [{0, 1, 2, 3}, {0, 1}, {2, 3}], [100.0, 1.0, 1.0]),
            (3, [{0}, {1}], None),
            (0, [{0, 1}], None),
            (5, [], None),
        ]
        for num_items, coverage, weights in instances:
            assert greedy_set_cover(num_items, coverage, weights) == greedy_set_cover_eager(
                num_items, coverage, weights
            )

    @given(
        num_items=st.integers(0, 25),
        candidates=st.lists(
            st.frozensets(st.integers(0, 24), max_size=8), max_size=25
        ),
        weight_choices=st.lists(
            st.sampled_from([1.0, 1.0, 2.0, 3.5, 0.25]), min_size=25, max_size=25
        ),
        use_weights=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_identical_solutions(
        self, num_items, candidates, weight_choices, use_weights
    ):
        weights = weight_choices[: len(candidates)] if use_weights else None
        lazy = greedy_set_cover(num_items, candidates, weights)
        eager = greedy_set_cover_eager(num_items, candidates, weights)
        assert lazy.selected == eager.selected
        assert lazy.covered_items == eager.covered_items
        assert lazy.uncovered_items == eager.uncovered_items
        assert lazy.total_weight == pytest.approx(eager.total_weight)

    def test_validation_matches(self):
        for implementation in (greedy_set_cover, greedy_set_cover_eager):
            with pytest.raises(ValueError):
                implementation(2, [{0}], weights=[1.0, 2.0])
            with pytest.raises(ValueError):
                implementation(2, [{0}], weights=[0.0])
