"""Tests for the bounded request queue and the micro-batching consumer."""

import threading
import time

import pytest

from repro.data.schema import EntityPair, Record
from repro.service import (
    MicroBatcher,
    PendingRequest,
    RequestQueue,
    ServiceClosed,
    ServiceOverloaded,
)


def _request(index: int) -> PendingRequest:
    values = {"name": f"item-{index}"}
    return PendingRequest(
        pair=EntityPair(
            pair_id=f"p{index}",
            left=Record(record_id=f"p{index}-L", values=values),
            right=Record(record_id=f"p{index}-R", values=values),
        ),
        fingerprint=f"fp{index}",
    )


class TestRequestQueue:
    def test_flush_on_size(self):
        queue = RequestQueue(capacity=16)
        for index in range(5):
            queue.put(_request(index))
        # max_wait is irrelevant: the batch fills from what is queued.
        batch = queue.get_batch(max_size=4, max_wait=10.0)
        assert [request.fingerprint for request in batch] == ["fp0", "fp1", "fp2", "fp3"]
        assert len(queue) == 1

    def test_flush_on_deadline_with_partial_batch(self):
        queue = RequestQueue(capacity=16)
        queue.put(_request(0))
        started = time.monotonic()
        batch = queue.get_batch(max_size=8, max_wait=0.05)
        elapsed = time.monotonic() - started
        assert len(batch) == 1
        assert elapsed < 5.0  # returned at the deadline, not blocked forever

    def test_deadline_counts_from_admission_not_batch_open(self):
        # A request that already waited max_wait in the queue (e.g. behind a
        # slow flush) is flushed immediately when the consumer next looks.
        queue = RequestQueue(capacity=16)
        stale = _request(0)
        stale.enqueued_at = time.monotonic() - 10.0
        queue.put(stale)
        started = time.monotonic()
        batch = queue.get_batch(max_size=8, max_wait=5.0)
        assert len(batch) == 1
        assert time.monotonic() - started < 1.0  # no fresh 5s deadline

    def test_zero_wait_flushes_immediately(self):
        queue = RequestQueue(capacity=16)
        queue.put(_request(0))
        queue.put(_request(1))
        batch = queue.get_batch(max_size=8, max_wait=0.0)
        assert len(batch) == 2

    def test_get_batch_blocks_until_first_item(self):
        queue = RequestQueue(capacity=16)
        result: list[PendingRequest] = []

        def consume():
            result.extend(queue.get_batch(max_size=2, max_wait=0.5))

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.02)
        queue.put(_request(0))
        queue.put(_request(1))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(result) == 2

    def test_backpressure_blocks_then_rejects(self):
        queue = RequestQueue(capacity=1)
        queue.put(_request(0))
        with pytest.raises(ServiceOverloaded, match="queue full"):
            queue.put(_request(1), timeout=0.02)

    def test_backpressure_releases_when_consumer_drains(self):
        queue = RequestQueue(capacity=1)
        queue.put(_request(0))

        def drain_soon():
            time.sleep(0.02)
            queue.get_batch(max_size=1, max_wait=0.0)

        thread = threading.Thread(target=drain_soon)
        thread.start()
        queue.put(_request(1), timeout=5.0)  # unblocked by the drain
        thread.join(timeout=5.0)
        assert len(queue) == 1

    def test_put_after_close_rejected(self):
        queue = RequestQueue(capacity=4)
        queue.close()
        with pytest.raises(ServiceClosed):
            queue.put(_request(0))

    def test_get_batch_returns_empty_only_when_closed_and_drained(self):
        queue = RequestQueue(capacity=4)
        queue.put(_request(0))
        queue.close()
        assert len(queue.get_batch(max_size=8, max_wait=0.0)) == 1
        assert queue.get_batch(max_size=8, max_wait=0.0) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            RequestQueue(capacity=0)
        queue = RequestQueue(capacity=4)
        with pytest.raises(ValueError, match="max_size"):
            queue.get_batch(max_size=0, max_wait=0.1)
        with pytest.raises(ValueError, match="max_wait"):
            queue.get_batch(max_size=1, max_wait=-0.1)


class TestMicroBatcher:
    def test_flushes_in_size_bounded_batches(self):
        queue = RequestQueue(capacity=64)
        flushes: list[list[str]] = []
        done = threading.Event()

        def flush(batch):
            flushes.append([request.fingerprint for request in batch])
            if sum(len(flushed) for flushed in flushes) == 10:
                done.set()

        for index in range(10):
            queue.put(_request(index))
        batcher = MicroBatcher(queue, flush, max_batch_size=4, max_wait=0.01)
        batcher.start()
        assert done.wait(timeout=5.0)
        batcher.stop(timeout=5.0)
        assert not batcher.running
        # Pre-filled queue: deterministic 4/4/2 split, order preserved.
        assert flushes == [
            ["fp0", "fp1", "fp2", "fp3"],
            ["fp4", "fp5", "fp6", "fp7"],
            ["fp8", "fp9"],
        ]
        assert batcher.num_flushes == 3

    def test_stop_drains_queued_requests(self):
        queue = RequestQueue(capacity=16)
        flushed: list[str] = []
        batcher = MicroBatcher(
            queue,
            lambda batch: flushed.extend(request.fingerprint for request in batch),
            max_batch_size=8,
            max_wait=0.01,
        )
        for index in range(3):
            queue.put(_request(index))
        batcher.start()
        batcher.stop(timeout=5.0)
        assert flushed == ["fp0", "fp1", "fp2"]

    def test_flush_exception_fails_futures_and_keeps_consumer_alive(self):
        # A flush callback that raises before delivering its futures must not
        # kill the consumer thread or strand its waiters: the batcher fails
        # the batch's still-pending futures with the exception and keeps
        # consuming subsequent batches.
        queue = RequestQueue(capacity=16)
        boom = RuntimeError("poison batch")
        flushed_ok: list[str] = []
        recovered = threading.Event()

        def flush(batch):
            if any(request.fingerprint == "fp0" for request in batch):
                raise boom
            flushed_ok.extend(request.fingerprint for request in batch)
            recovered.set()

        batcher = MicroBatcher(queue, flush, max_batch_size=1, max_wait=0.01)
        poisoned = _request(0)
        queue.put(poisoned)
        batcher.start()
        with pytest.raises(RuntimeError, match="poison batch"):
            poisoned.future.result(timeout=5.0)
        assert batcher.running  # the consumer survived the bad flush
        queue.put(_request(1))  # and keeps serving the next batch
        assert recovered.wait(timeout=5.0)
        assert flushed_ok == ["fp1"]
        assert batcher.num_flush_failures == 1
        batcher.stop(timeout=5.0)

    def test_flush_exception_leaves_delivered_futures_alone(self):
        # If the callback already settled some futures before raising, only
        # the still-pending ones receive the exception.
        queue = RequestQueue(capacity=16)

        def flush(batch):
            batch[0].future.set_result("delivered")
            raise RuntimeError("failed after partial delivery")

        batcher = MicroBatcher(queue, flush, max_batch_size=2, max_wait=10.0)
        first, second = _request(0), _request(1)
        queue.put(first)
        queue.put(second)
        batcher.start()
        assert first.future.result(timeout=5.0) == "delivered"
        with pytest.raises(RuntimeError, match="partial delivery"):
            second.future.result(timeout=5.0)
        batcher.stop(timeout=5.0)

    def test_start_is_idempotent(self):
        queue = RequestQueue(capacity=4)
        batcher = MicroBatcher(queue, lambda batch: None, max_batch_size=2, max_wait=0.01)
        batcher.start()
        first_thread = batcher._thread
        batcher.start()
        assert batcher._thread is first_thread
        batcher.stop(timeout=5.0)
