"""Tests for the unified tracing + metrics layer (``repro.observability``)."""

import json
import threading

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.engines.faults import FakeClock, ScriptedTransport
from repro.engines.transport import (
    RateLimiter,
    RetryPolicy,
    RetryingTransport,
    TerminalTransportError,
    TransportRequest,
    retry_reason,
)
from repro.llm.executors import AsyncExecutor, ConcurrentExecutor
from repro.observability import (
    JsonlTraceSink,
    MetricsRegistry,
    NOOP_TRACER,
    NoopTracer,
    Tracer,
    carry_current_span,
    current_span,
    read_trace_file,
)
from repro.observability.cli import (
    aggregate_by_name,
    build_forest,
    main as trace_main,
    render_tree,
    self_time,
    slowest_spans,
)
from repro.service.microbatcher import MicroBatcher, PendingRequest, RequestQueue


class TestTracer:
    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", dataset="beer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        inner, outer = tracer.finished_spans()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(1.25)
        assert outer.attributes == {"dataset": "beer"}
        assert all(span.status == "ok" for span in (inner, outer))

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id != second.trace_id
        assert first.span_id != second.span_id

    def test_exception_marks_the_span_errored(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError: nope"

    def test_manually_set_status_survives_a_clean_exit(self):
        # The transport marks retryable failed attempts "error" even though
        # the exception is swallowed inside the span body.
        tracer = Tracer(clock=FakeClock())
        with tracer.span("attempt") as scope:
            scope.span.status = "error"
        (span,) = tracer.finished_spans()
        assert span.status == "error"

    def test_current_span_tracks_the_lexical_scope(self):
        tracer = Tracer(clock=FakeClock())
        assert current_span() is None
        with tracer.span("outer") as scope:
            assert current_span() is scope.span
        assert current_span() is None

    def test_buffer_is_bounded_but_the_sink_sees_everything(self):
        written = []

        class ListSink:
            def write(self, span):
                written.append(span.name)

        tracer = Tracer(sink=ListSink(), max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.finished_spans()] == ["s3", "s4"]
        assert written == ["s0", "s1", "s2", "s3", "s4"]
        tracer.clear()
        assert tracer.finished_spans() == []

    def test_noop_tracer_records_nothing_and_shares_one_object(self):
        assert isinstance(NOOP_TRACER, NoopTracer)
        assert NOOP_TRACER.enabled is False
        first = NOOP_TRACER.span("a", key="value")
        second = NOOP_TRACER.span("b")
        assert first is second  # one shared no-op context manager
        with first as scope:
            scope.set_attribute("ignored", 1)
            assert current_span() is None
        assert NOOP_TRACER.finished_spans() == []

    def test_span_to_dict_is_json_serializable(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("op", n=3):
            pass
        (span,) = tracer.finished_spans()
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "op"
        assert payload["attributes"] == {"n": 3}
        assert payload["status"] == "ok"


class TestCarryCurrentSpan:
    def test_without_an_active_span_the_callable_is_returned_unchanged(self):
        def fn():
            return 42

        assert carry_current_span(fn) is fn

    def test_concurrent_executor_workers_parent_to_the_submitting_span(self):
        tracer = Tracer(clock=FakeClock())

        def work(index):
            with tracer.span(f"work:{index}"):
                return index

        with tracer.span("submit"):
            results = ConcurrentExecutor(max_workers=4).map(work, range(8))
        assert results == list(range(8))
        spans = {span.name: span for span in tracer.finished_spans()}
        submit = spans["submit"]
        for index in range(8):
            child = spans[f"work:{index}"]
            assert child.parent_id == submit.span_id
            assert child.trace_id == submit.trace_id

    def test_async_executor_sync_path_parents_to_the_submitting_span(self):
        tracer = Tracer(clock=FakeClock())

        def work(index):
            with tracer.span(f"work:{index}"):
                return index

        with tracer.span("submit"):
            results = AsyncExecutor(max_in_flight=3).map(work, range(6))
        assert results == list(range(6))
        spans = {span.name: span for span in tracer.finished_spans()}
        submit = spans["submit"]
        for index in range(6):
            assert spans[f"work:{index}"].parent_id == submit.span_id

    def test_async_executor_coroutines_inherit_the_submitting_span(self):
        tracer = Tracer(clock=FakeClock())

        async def work(index):
            with tracer.span(f"work:{index}"):
                return index

        with tracer.span("submit"):
            results = AsyncExecutor(max_in_flight=3).map(work, range(6))
        assert results == list(range(6))
        spans = {span.name: span for span in tracer.finished_spans()}
        submit = spans["submit"]
        for index in range(6):
            assert spans[f"work:{index}"].parent_id == submit.span_id

    def test_worker_context_is_restored_after_the_carried_call(self):
        tracer = Tracer(clock=FakeClock())
        leaked = []

        def work(index):
            return index

        def probe(index):
            leaked.append(current_span())
            return index

        with ConcurrentExecutor(max_workers=1, persistent=True) as pool:
            with tracer.span("submit"):
                pool.map(work, range(2))
            # Same worker thread, no ambient span on the submitting side:
            # nothing may have leaked from the previous traced map.
            pool.map(probe, range(2))
        assert leaked == [None, None]


class TestMetricsRegistry:
    def test_counter_increments_and_rejects_going_down(self):
        registry = MetricsRegistry(FakeClock())
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_counter_keeps_one_sample_per_combination(self):
        registry = MetricsRegistry(FakeClock())
        counter = registry.counter("repro_retries_total", labels=("reason",))
        counter.inc(reason="429")
        counter.inc(2, reason="5xx")
        assert counter.value(reason="429") == 1
        assert counter.value(reason="5xx") == 2
        with pytest.raises(ValueError):
            counter.inc(other="x")

    def test_gauge_set_inc_dec_and_scrape_callback(self):
        registry = MetricsRegistry(FakeClock())
        gauge = registry.gauge("repro_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6
        source = {"value": 0.25}
        bridged = registry.gauge("repro_hit_rate")
        bridged.set_function(lambda: source["value"])
        assert bridged.value() == 0.25
        source["value"] = 0.75
        assert bridged.value() == 0.75  # read at scrape time, not at bind time

    def test_histogram_buckets_are_cumulative_in_the_exposition(self):
        registry = MetricsRegistry(FakeClock())
        histogram = registry.histogram("repro_lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(56.05)
        rendered = "\n".join(histogram.render())
        assert 'repro_lat_bucket{le="0.1"} 1' in rendered
        assert 'repro_lat_bucket{le="1"} 3' in rendered
        assert 'repro_lat_bucket{le="10"} 4' in rendered
        assert 'repro_lat_bucket{le="+Inf"} 5' in rendered
        assert "repro_lat_count 5" in rendered

    def test_registration_is_idempotent_but_kind_conflicts_raise(self):
        registry = MetricsRegistry(FakeClock())
        first = registry.counter("repro_thing_total")
        assert registry.counter("repro_thing_total") is first
        with pytest.raises(ValueError):
            registry.gauge("repro_thing_total")
        with pytest.raises(ValueError):
            registry.counter("repro_thing_total", labels=("reason",))

    def test_invalid_metric_names_are_rejected(self):
        registry = MetricsRegistry(FakeClock())
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")

    def test_time_measures_with_the_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock)
        histogram = registry.histogram("repro_flush_seconds", buckets=(1.0, 10.0))
        with registry.time(histogram):
            clock.advance(2.5)
        assert histogram.count() == 1
        assert histogram.sum() == pytest.approx(2.5)

    def test_render_emits_valid_prometheus_text(self):
        registry = MetricsRegistry(FakeClock())
        registry.counter("repro_a_total", "a help").inc(3)
        registry.gauge("repro_b", labels=("kind",)).set(1.5, kind="x")
        text = registry.render()
        assert "# HELP repro_a_total a help" in text
        assert "# TYPE repro_a_total counter" in text
        assert "repro_a_total 3" in text
        assert 'repro_b{kind="x"} 1.5' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(FakeClock())
        gauge = registry.gauge("repro_esc", labels=("path",))
        gauge.set(1, path='a"b\\c\nd')
        assert 'path="a\\"b\\\\c\\nd"' in "\n".join(gauge.render())

    def test_snapshot_is_json_serializable_and_complete(self):
        registry = MetricsRegistry(FakeClock())
        registry.counter("repro_a_total").inc(2)
        registry.histogram("repro_lat", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["repro_a_total"]["series"][0]["value"] == 2
        assert snapshot["repro_lat"]["series"][0]["count"] == 1

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry(FakeClock())
        counter = registry.counter("repro_racy_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestJsonlTraceSink:
    def test_roundtrip_through_the_sink_and_reader(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlTraceSink(path), clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = read_trace_file(path)
        assert [span["name"] for span in spans] == ["inner", "outer"]
        assert spans[0]["parent"] == spans[1]["span"]

    def test_appending_runs_share_one_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            with JsonlTraceSink(path) as sink:
                tracer = Tracer(sink=sink, clock=FakeClock())
                with tracer.span("run"):
                    pass
        assert len(read_trace_file(path)) == 2

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlTraceSink(path), clock=FakeClock())
        with tracer.span("whole"):
            pass
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"trace": "t000001", "span": "s000')  # killed mid-append
        spans = read_trace_file(path)
        assert [span["name"] for span in spans] == ["whole"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('not json\n{"span": "s1", "name": "x"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="malformed trace line"):
            read_trace_file(path)

    def test_writing_to_a_closed_sink_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        tracer = Tracer(sink=sink, clock=FakeClock())
        with tracer.span("before"):
            pass
        assert sink.num_written == 1
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            with tracer.span("after"):
                pass


class TestTraceCli:
    def _write_trace(self, path):
        tracer = Tracer(sink=JsonlTraceSink(path), clock=(clock := FakeClock()))
        with tracer.span("root"):
            clock.advance(0.1)
            with tracer.span("child:a"):
                clock.advance(0.5)
            with tracer.span("child:b"):
                clock.advance(0.2)
        return path

    def test_build_forest_nests_children_and_promotes_orphans(self):
        spans = [
            {"trace": "t1", "span": "s1", "parent": None, "name": "root", "start": 0.0},
            {"trace": "t1", "span": "s2", "parent": "s1", "name": "kid", "start": 1.0},
            {"trace": "t1", "span": "s3", "parent": "gone", "name": "orphan", "start": 2.0},
        ]
        roots, children = build_forest(spans)
        assert [root["name"] for root in roots] == ["root", "orphan"]
        assert [child["name"] for child in children["s1"]] == ["kid"]

    def test_self_time_subtracts_child_coverage(self, tmp_path):
        spans = read_trace_file(self._write_trace(tmp_path / "t.jsonl"))
        _, children = build_forest(spans)
        root = next(span for span in spans if span["name"] == "root")
        assert float(root["duration"]) == pytest.approx(0.8)
        assert self_time(root, children) == pytest.approx(0.1)

    def test_render_tree_indents_children_under_the_root(self, tmp_path):
        text = render_tree(read_trace_file(self._write_trace(tmp_path / "t.jsonl")))
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        root_line = next(line for line in lines if "root" in line)
        child_line = next(line for line in lines if "child:a" in line)
        indent = len(child_line) - len(child_line.lstrip())
        assert indent > len(root_line) - len(root_line.lstrip())

    def test_aggregate_orders_by_total_time(self, tmp_path):
        rows = aggregate_by_name(read_trace_file(self._write_trace(tmp_path / "t.jsonl")))
        assert rows[0]["name"] == "root"
        child_a = next(row for row in rows if row["name"] == "child:a")
        assert child_a["count"] == 1
        assert child_a["total_seconds"] == pytest.approx(0.5)

    def test_slowest_spans_returns_top_n(self, tmp_path):
        spans = read_trace_file(self._write_trace(tmp_path / "t.jsonl"))
        top = slowest_spans(spans, top=2)
        assert [span["name"] for span in top] == ["root", "child:a"]
        with pytest.raises(ValueError):
            slowest_spans(spans, top=0)

    def test_main_renders_a_report(self, tmp_path, capsys):
        path = self._write_trace(tmp_path / "t.jsonl")
        assert trace_main([str(path), "--top", "2"]) == 0
        output = capsys.readouterr().out
        assert "root" in output
        assert "per-stage latency" in output
        assert "top 2 slowest spans" in output

    def test_main_fails_cleanly_on_missing_or_empty_traces(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "absent.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert trace_main([str(empty)]) == 1
        assert "repro-trace:" in capsys.readouterr().err


class TestTransportObservability:
    def test_attempt_spans_carry_retry_reason_and_wait_time(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        metrics = MetricsRegistry(clock)
        transport = RetryingTransport(
            ScriptedTransport([429, {"answer": "yes"}]),
            policy=RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0),
            limiter=RateLimiter(requests_per_second=1.0, clock=clock, burst_seconds=1.0),
            clock=clock,
            tracer=tracer,
            metrics=metrics,
        )
        response = transport.send(TransportRequest(url="http://x", payload={}))
        assert response.payload == {"answer": "yes"}

        spans = {span.span_id: span for span in tracer.finished_spans()}
        send = next(s for s in spans.values() if s.name == "transport:send")
        attempts = sorted(
            (s for s in spans.values() if s.name == "transport:attempt"),
            key=lambda s: s.attributes["attempt"],
        )
        assert send.attributes["url"] == "http://x"
        assert len(attempts) == 2
        assert all(span.parent_id == send.span_id for span in attempts)
        first, second = attempts
        assert first.status == "error"
        assert first.attributes["retry_reason"] == "429"
        assert first.attributes["retryable"] is True
        assert second.status == "ok"
        # The second attempt paid the 1 req/s limiter after the first request
        # plus the backoff drained the bucket.
        assert second.attributes["rate_limit_wait_seconds"] >= 0.0

        assert metrics.get("repro_transport_requests_total").value() == 1
        assert metrics.get("repro_transport_attempts_total").value() == 2
        assert metrics.get("repro_transport_retries_total").value(reason="429") == 1
        assert metrics.get("repro_transport_failures_total").value() == 0

    def test_terminal_error_counts_as_failure_not_retry(self):
        clock = FakeClock()
        metrics = MetricsRegistry(clock)
        transport = RetryingTransport(
            ScriptedTransport([400]), clock=clock, metrics=metrics
        )
        with pytest.raises(TerminalTransportError):
            transport.send(TransportRequest(url="http://x", payload={}))
        assert metrics.get("repro_transport_failures_total").value() == 1
        assert metrics.get("repro_transport_retries_total").value(reason="429") == 0

    def test_retry_reason_classification(self):
        assert retry_reason(TerminalTransportError("x", status=None)) == "connection"
        assert retry_reason(TerminalTransportError("x", status=429)) == "429"
        assert retry_reason(TerminalTransportError("x", status=503)) == "5xx"
        assert retry_reason(TerminalTransportError("x", status=404)) == "404"

    def test_bind_observability_after_construction(self):
        clock = FakeClock()
        transport = RetryingTransport(ScriptedTransport([{}]), clock=clock)
        assert transport.tracer is NOOP_TRACER
        tracer = Tracer(clock=clock)
        metrics = MetricsRegistry(clock)
        transport.bind_observability(tracer=tracer, metrics=metrics)
        transport.send(TransportRequest(url="http://x", payload={}))
        assert {span.name for span in tracer.finished_spans()} == {
            "transport:send",
            "transport:attempt",
        }
        # The 429 retry family exists (at zero) before any rate-limit hit.
        assert 'repro_transport_retries_total{reason="429"} 0' in metrics.render()


def _pending(index):
    from repro.data.schema import EntityPair, Record

    values = {"name": f"item-{index}"}
    return PendingRequest(
        pair=EntityPair(
            pair_id=f"p{index}",
            left=Record(record_id=f"p{index}-L", values=values),
            right=Record(record_id=f"p{index}-R", values=values),
        ),
        fingerprint=f"fp{index}",
    )


class TestMicroBatcherFlushReason:
    def _batcher(self, max_batch_size=4, on_flush=None, queue=None):
        queue = queue or RequestQueue(capacity=16)
        return queue, MicroBatcher(
            queue,
            flush=lambda batch: None,
            max_batch_size=max_batch_size,
            max_wait=0.01,
            on_flush=on_flush,
        )

    def test_full_batch_is_a_size_flush(self):
        queue, batcher = self._batcher(max_batch_size=2)
        assert batcher.flush_reason([_pending(0), _pending(1)]) == "size"

    def test_partial_batch_is_a_deadline_flush_until_close(self):
        queue, batcher = self._batcher(max_batch_size=4)
        batch = [_pending(0)]
        assert batcher.flush_reason(batch) == "deadline"
        queue.close()
        assert batcher.flush_reason(batch) == "close"

    def test_on_flush_observer_sees_every_flush_with_its_reason(self):
        observed = []
        queue, batcher = self._batcher(
            max_batch_size=2, on_flush=lambda batch, reason: observed.append(
                (len(batch), reason)
            )
        )
        for index in range(4):
            queue.put(_pending(index))
        batcher.start()
        batcher.stop(timeout=5.0)
        assert not batcher.running
        assert sum(count for count, _ in observed) == 4
        assert all(reason in ("size", "deadline", "close") for _, reason in observed)

    def test_a_crashing_observer_does_not_kill_the_consumer(self):
        flushed = []

        def bad_observer(batch, reason):
            raise RuntimeError("observer bug")

        queue = RequestQueue(capacity=16)
        batcher = MicroBatcher(
            queue,
            flush=lambda batch: flushed.extend(batch),
            max_batch_size=2,
            max_wait=0.01,
            on_flush=bad_observer,
        )
        for index in range(4):
            queue.put(_pending(index))
        batcher.start()
        batcher.stop(timeout=5.0)
        assert len(flushed) == 4


class TestTracedRunsAreIdentical:
    def test_traced_batcher_run_matches_untraced_and_nests_stages(self):
        dataset = load_dataset("beer", seed=7, scale=1.0)
        config = BatcherConfig(seed=1, max_questions=16)
        tracer = Tracer()
        traced = BatchER(config, tracer=tracer).run(dataset)
        untraced = BatchER(config).run(dataset)
        # Instrumentation observes the run without altering it.
        assert traced == untraced

        spans = tracer.finished_spans()
        by_id = {span.span_id: span for span in spans}
        root = next(span for span in spans if span.name == "batcher:run")
        assert root.parent_id is None
        stage_spans = [span for span in spans if span.name.startswith("stage:")]
        assert stage_spans, "pipeline stages must be traced"
        for span in stage_spans:
            assert span.parent_id is not None
            assert by_id[span.parent_id].trace_id == root.trace_id
        assert {"stage:inference", "stage:evaluate"} <= {s.name for s in stage_spans}
