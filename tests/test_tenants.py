"""Tests for the multi-tenant admission layer (`repro.service.tenants`)."""

import pytest

from repro.core.config import BatcherConfig
from repro.engines.faults import FakeClock
from repro.service import (
    ResolutionService,
    ServiceConfig,
    TenantConfig,
)
from repro.service.tenants import (
    ANONYMOUS_TENANT,
    Tenant,
    TenantBudgetExceeded,
    TenantManager,
    TenantQuotaExceeded,
    UnknownTenant,
)


class TestTenantConfig:
    def test_roundtrip(self):
        config = TenantConfig(
            name="acme", api_key="k", requests_per_second=5.0, burst=10.0,
            cost_budget=1.5,
        )
        assert TenantConfig.from_dict(config.to_dict()) == config

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown tenant config fields"):
            TenantConfig.from_dict({"name": "a", "api_key": "k", "tier": "gold"})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"api_key": ""},
            {"requests_per_second": 0.0},
            {"requests_per_second": -1.0},
            {"burst": 0.5},
            {"cost_budget": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = {"name": "a", "api_key": "k"}
        with pytest.raises(ValueError):
            TenantConfig(**{**base, **kwargs})


class TestTenantQuota:
    def test_burst_then_reject_then_refill(self):
        clock = FakeClock()
        tenant = Tenant(
            TenantConfig(name="t", api_key="k", requests_per_second=2.0, burst=3.0),
            clock=clock,
        )
        for _ in range(3):  # the full burst is admitted back to back
            tenant.admit()
        with pytest.raises(TenantQuotaExceeded) as excinfo:
            tenant.admit()
        assert excinfo.value.tenant == "t"
        assert excinfo.value.retry_after == pytest.approx(0.5)  # 1 unit at 2/s
        clock.advance(0.5)
        tenant.admit()  # the bucket genuinely refilled

    def test_rejection_does_not_debit_the_bucket(self):
        # A greedy tenant hammering the endpoint must not push its bucket
        # into debt: after the quota window passes, one request is admitted
        # no matter how many were refused meanwhile.
        clock = FakeClock()
        tenant = Tenant(
            TenantConfig(name="t", api_key="k", requests_per_second=1.0, burst=1.0),
            clock=clock,
        )
        tenant.admit()
        for _ in range(50):
            with pytest.raises(TenantQuotaExceeded):
                tenant.admit()
        clock.advance(1.0)
        tenant.admit()  # refused attempts left no debt behind

    def test_multi_unit_admission(self):
        clock = FakeClock()
        tenant = Tenant(
            TenantConfig(name="t", api_key="k", requests_per_second=1.0, burst=4.0),
            clock=clock,
        )
        tenant.admit(units=4)
        with pytest.raises(TenantQuotaExceeded):
            tenant.admit(units=1)

    def test_no_quota_admits_everything(self):
        tenant = Tenant(TenantConfig(name="t", api_key="k"))
        for _ in range(1000):
            tenant.admit()
        assert tenant.stats()["admitted"] == 1000


class TestTenantBudget:
    def test_budget_blocks_after_spend_and_counts_rejections(self):
        tenant = Tenant(TenantConfig(name="t", api_key="k", cost_budget=0.10))
        tenant.check_budget()
        tenant.charge(0.06)
        tenant.check_budget()  # under budget: still fine
        tenant.charge(0.05)
        with pytest.raises(TenantBudgetExceeded) as excinfo:
            tenant.check_budget()
        assert excinfo.value.tenant == "t"
        stats = tenant.stats()
        assert stats["cost_spent"] == pytest.approx(0.11)
        assert stats["rejected_budget"] == 1

    def test_no_budget_never_blocks(self):
        tenant = Tenant(TenantConfig(name="t", api_key="k"))
        tenant.charge(1e9)
        tenant.check_budget()

    def test_nonpositive_charges_ignored(self):
        tenant = Tenant(TenantConfig(name="t", api_key="k", cost_budget=1.0))
        tenant.charge(0.0)
        tenant.charge(-5.0)
        assert tenant.spent == 0.0


class TestTenantManager:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant name"):
            TenantManager(
                (
                    TenantConfig(name="a", api_key="k1"),
                    TenantConfig(name="a", api_key="k2"),
                )
            )

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="share an API key"):
            TenantManager(
                (
                    TenantConfig(name="a", api_key="k"),
                    TenantConfig(name="b", api_key="k"),
                )
            )

    def test_require_api_key_needs_tenants(self):
        with pytest.raises(ValueError, match="at least one configured tenant"):
            TenantManager((), require_api_key=True)

    def test_authentication_paths(self):
        manager = TenantManager((TenantConfig(name="a", api_key="k"),))
        assert manager.authenticate("k").name == "a"
        assert manager.authenticate(None) is None  # anonymous allowed
        assert manager.authenticate("") is None
        with pytest.raises(UnknownTenant):
            manager.authenticate("wrong")  # a wrong key is always an error

    def test_missing_key_refused_when_required(self):
        manager = TenantManager(
            (TenantConfig(name="a", api_key="k"),), require_api_key=True
        )
        with pytest.raises(UnknownTenant):
            manager.authenticate(None)

    def test_stats_and_names(self):
        manager = TenantManager(
            (
                TenantConfig(name="a", api_key="k1"),
                TenantConfig(name="b", api_key="k2"),
            )
        )
        assert manager.names == ("a", "b")
        assert len(manager) == 2
        assert set(manager.stats()) == {"a", "b"}
        assert manager.get("a").name == "a"
        assert manager.get("zzz") is None


class TestServiceConfigTenants:
    def test_roundtrip_with_tenants(self):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            tenants=(
                TenantConfig(name="a", api_key="k1", requests_per_second=2.0),
            ),
            require_api_key=True,
        )
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt.tenants == config.tenants
        assert rebuilt.require_api_key is True

    def test_require_api_key_without_tenants_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(batcher=BatcherConfig(seed=1), require_api_key=True)

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(
                batcher=BatcherConfig(seed=1),
                tenants=(
                    TenantConfig(name="a", api_key="k1"),
                    TenantConfig(name="a", api_key="k2"),
                ),
            )


@pytest.fixture()
def tenant_service(beer_dataset):
    config = ServiceConfig(
        batcher=BatcherConfig(seed=1),
        max_batch_size=8,
        max_wait_seconds=0.02,
        tenants=(
            TenantConfig(name="acme", api_key="k-acme"),
            TenantConfig(name="globex", api_key="k-globex", cost_budget=1e-9),
        ),
    )
    service = ResolutionService.from_dataset(beer_dataset, config).start()
    yield service
    service.stop()


class TestServiceIntegration:
    def test_live_resolution_cost_attributed_to_owner(
        self, tenant_service, beer_dataset
    ):
        tenant = tenant_service.authenticate("k-acme")
        pairs = [pair.without_label() for pair in list(beer_dataset.splits.test)[:4]]
        resolutions = tenant_service.resolve_many(pairs, tenant=tenant)
        assert len(resolutions) == len(pairs)
        stats = tenant_service.stats()
        assert stats.tenants["acme"]["admitted"] == len(pairs)
        assert stats.tenants["acme"]["cost_spent"] > 0.0
        # Cost attribution conserves spend: the tenant paid (approximately)
        # what the resolver recorded for those flushes.
        assert stats.tenants["acme"]["cost_spent"] == pytest.approx(
            stats.cost.total_cost, rel=1e-6
        )

    def test_budget_tenant_degrades_to_cache(self, tenant_service, beer_dataset):
        greedy = tenant_service.authenticate("k-globex")
        pair = list(beer_dataset.splits.test)[10].without_label()
        [first] = tenant_service.resolve_many([pair], tenant=greedy)
        # The first (uncached) resolution spent the microscopic budget...
        other = list(beer_dataset.splits.test)[11].without_label()
        with pytest.raises(TenantBudgetExceeded):
            tenant_service.resolve_many([other], tenant=greedy)
        # ...but the cached pair still resolves, to the same label.
        [again] = tenant_service.resolve_many([pair], tenant=greedy)
        assert again.label == first.label
        assert tenant_service.stats().tenants["globex"]["rejected_budget"] >= 1

    def test_bulk_path_charges_tenant(self, tenant_service, beer_dataset):
        tenant = tenant_service.authenticate("k-acme")
        pairs = [
            pair.without_label() for pair in list(beer_dataset.splits.test)[20:24]
        ]
        resolutions = tenant_service.resolve_bulk(pairs, shards=2, tenant=tenant)
        assert len(resolutions) == len(pairs)
        stats = tenant_service.stats()
        assert stats.tenants["acme"]["admitted"] >= len(pairs)
        assert stats.tenants["acme"]["cost_spent"] > 0.0

    def test_anonymous_traffic_untouched_by_tenant_limits(
        self, tenant_service, beer_dataset
    ):
        pair = list(beer_dataset.splits.test)[30].without_label()
        [resolution] = tenant_service.resolve_many([pair])  # no tenant
        assert resolution.label in (0, 1)

    def test_per_tenant_metric_families_pre_seeded(self, tenant_service):
        exposition = tenant_service.metrics.render()
        for name in ("acme", "globex", ANONYMOUS_TENANT):
            assert (
                f'repro_service_requests_total{{tenant="{name}",status="200"}}'
                in exposition
            )
