"""Tests for the LLM substrate: usage accounting, pricing, profiles and the simulated model."""

import pytest

from repro.data.schema import MatchLabel
from repro.llm import (
    SimulatedLLM,
    UsageRecord,
    UsageTracker,
    available_models,
    create_llm,
    get_pricing,
    get_profile,
    prompt_cost,
)
from repro.llm.pricing import usage_cost
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.parser import parse_batch_answers, parse_standard_answer
from repro.prompting.standard import StandardPromptBuilder


@pytest.fixture(scope="module")
def beer_prompt_parts(beer_dataset):
    questions = list(beer_dataset.splits.test)[:8]
    demos = list(beer_dataset.splits.train)[:8]
    return beer_dataset.attributes, questions, demos


class TestUsageTracker:
    def test_accumulates_tokens(self):
        tracker = UsageTracker()
        tracker.add(UsageRecord("gpt-3.5-03", prompt_tokens=100, completion_tokens=10))
        tracker.add(UsageRecord("gpt-3.5-03", prompt_tokens=50, completion_tokens=5))
        assert tracker.num_calls == 2
        assert tracker.prompt_tokens == 150
        assert tracker.completion_tokens == 15
        assert tracker.total_tokens == 165

    def test_reset(self):
        tracker = UsageTracker()
        tracker.add(UsageRecord("gpt-4", 10, 1))
        tracker.reset()
        assert tracker.num_calls == 0
        assert tracker.total_tokens == 0


class TestPricing:
    def test_gpt4_is_about_10x_gpt35(self):
        gpt35 = get_pricing("gpt-3.5-03")
        gpt4 = get_pricing("gpt-4")
        assert gpt4.prompt_price_per_1k == pytest.approx(10 * gpt35.prompt_price_per_1k)

    def test_prompt_cost_formula(self):
        assert prompt_cost("gpt-4", prompt_tokens=1000) == pytest.approx(0.01)
        assert prompt_cost("gpt-3.5-03", prompt_tokens=1000, completion_tokens=1000) == pytest.approx(0.003)

    def test_usage_cost(self):
        tracker = UsageTracker()
        tracker.add(UsageRecord("gpt-3.5-03", 2000, 0))
        assert usage_cost("gpt-3.5-03", tracker) == pytest.approx(0.002)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="no pricing"):
            get_pricing("gpt-99")


class TestProfiles:
    def test_all_models_have_profiles_and_pricing(self):
        for model in available_models():
            profile = get_profile(model)
            assert profile.name == model
            get_pricing(model)

    def test_capability_ordering(self):
        assert get_profile("gpt-4").perception_noise < get_profile("gpt-3.5-03").perception_noise
        assert get_profile("gpt-3.5-03").perception_noise < get_profile("gpt-3.5-06").perception_noise
        assert get_profile("llama2-70b").batch_failure_rate > 0.5

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="no profile"):
            get_profile("palm-2")


class TestRegistry:
    def test_create_known_model(self):
        llm = create_llm("gpt-4", seed=3)
        assert isinstance(llm, SimulatedLLM)
        assert llm.model_name == "gpt-4"

    def test_create_unknown_model_raises_value_error(self):
        # Same error type and message shape as BatcherConfig's model check.
        with pytest.raises(ValueError, match="unknown model.*expected one of"):
            create_llm("claude-opus")


class TestSimulatedLLM:
    def test_usage_recorded_per_call(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        prompt = BatchPromptBuilder(attributes).build(questions, demos)
        llm = SimulatedLLM("gpt-3.5-03", seed=1)
        response = llm.complete(prompt.text)
        assert llm.usage.num_calls == 1
        assert response.prompt_tokens > response.completion_tokens > 0
        assert response.total_tokens == response.prompt_tokens + response.completion_tokens

    def test_batch_answers_are_parseable_and_complete(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        prompt = BatchPromptBuilder(attributes).build(questions, demos)
        response = SimulatedLLM("gpt-3.5-03", seed=1).complete(prompt.text)
        parsed = parse_batch_answers(response.text, len(questions))
        assert parsed.num_unanswered == 0
        assert all(label in (MatchLabel.MATCH, MatchLabel.NON_MATCH) for label in parsed.labels)

    def test_standard_answer_is_parseable(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        prompt = StandardPromptBuilder(attributes).build(questions[0], demos)
        response = SimulatedLLM("gpt-3.5-03", seed=1).complete(prompt.text)
        parsed = parse_standard_answer(response.text)
        assert parsed.num_unanswered == 0

    def test_deterministic_for_same_seed(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        prompt = BatchPromptBuilder(attributes).build(questions, demos)
        first = SimulatedLLM("gpt-3.5-03", seed=5).complete(prompt.text)
        second = SimulatedLLM("gpt-3.5-03", seed=5).complete(prompt.text)
        assert first.text == second.text

    def test_different_seeds_can_differ(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        prompt = BatchPromptBuilder(attributes).build(questions, demos)
        responses = {
            SimulatedLLM("gpt-3.5-03", seed=seed).complete(prompt.text).text for seed in range(6)
        }
        assert len(responses) >= 1  # determinism per seed; variation allowed across seeds

    def test_llama_fails_on_batches_but_not_single_questions(self, beer_prompt_parts):
        attributes, questions, demos = beer_prompt_parts
        llm = SimulatedLLM("llama2-70b", seed=1)
        failures = 0
        for start in range(0, 40, 8):
            prompt = BatchPromptBuilder(attributes).build(questions[:8], demos[start % 8:][:4])
            parsed = parse_batch_answers(llm.complete(prompt.text).text, 8)
            failures += parsed.num_unanswered > 0
        assert failures >= 2  # fails most of the time on batches

        single = StandardPromptBuilder(attributes).build(questions[0], demos)
        parsed_single = parse_standard_answer(llm.complete(single.text).text)
        assert parsed_single.num_unanswered == 0

    def test_prompt_without_questions(self):
        llm = SimulatedLLM("gpt-3.5-03", seed=1)
        response = llm.complete("This prompt has no question blocks.")
        assert "could not find" in response.text.lower()

    def test_relevant_demonstrations_beat_no_demonstrations(self, beer_dataset):
        # ICL sanity: prompting with labeled nearest-neighbour demonstrations
        # should not be worse than zero-shot prompting on aggregate accuracy.
        from repro.clustering.distance import cross_distances
        from repro.features.structure_aware import StructureAwareExtractor

        questions = list(beer_dataset.splits.test)[:48]
        pool = list(beer_dataset.splits.train)
        extractor = StructureAwareExtractor(beer_dataset.attributes)
        question_features = extractor.extract_matrix(questions)
        pool_features = extractor.extract_matrix(pool)
        distances = cross_distances(question_features, pool_features)

        llm = SimulatedLLM("gpt-3.5-03", seed=2)
        builder = StandardPromptBuilder(beer_dataset.attributes)

        def accuracy(with_demos: bool) -> float:
            correct = 0
            for row, question in enumerate(questions):
                demos = []
                if with_demos:
                    nearest = distances[row].argsort()[:4]
                    demos = [pool[int(index)] for index in nearest]
                response = llm.complete(builder.build(question, demos).text)
                label = parse_standard_answer(response.text).resolved()[0]
                correct += label == question.label
            return correct / len(questions)

        assert accuracy(True) >= accuracy(False) - 0.05

    def test_temperature_must_be_non_negative(self):
        llm = SimulatedLLM("gpt-3.5-03", temperature=-1.0)
        assert llm.temperature == 0.0
