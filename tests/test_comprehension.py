"""Tests for the simulated LLM's prompt comprehension (reading) layer."""

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.llm.comprehension import parse_attribute_text, read_prompt
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.standard import StandardPromptBuilder

ATTRIBUTES = ("title", "genre", "price")


def make_pair(pair_id, title_left, title_right, label=MatchLabel.MATCH):
    return EntityPair(
        pair_id=pair_id,
        left=Record(f"A-{pair_id}", {"title": title_left, "genre": "Dance,Music,Hip-Hop", "price": "0.99"}),
        right=Record(f"B-{pair_id}", {"title": title_right, "genre": "Music", "price": "1.29"}),
        label=label,
    )


class TestParseAttributeText:
    def test_simple_parsing(self):
        values = parse_attribute_text("title: Rashi, price: 0.99")
        assert values == {"title": "Rashi", "price": "0.99"}

    def test_values_containing_commas(self):
        values = parse_attribute_text("title: Rashi, genre: Dance,Music,Hip-Hop, price: 0.99")
        assert values["genre"] == "Dance,Music,Hip-Hop"
        assert values["price"] == "0.99"

    def test_missing_values_are_empty_strings(self):
        values = parse_attribute_text("title: mac14-pro, id: ")
        assert values["id"] == ""

    def test_empty_text(self):
        assert parse_attribute_text("") == {}


class TestReadPrompt:
    def test_round_trip_of_batch_prompt(self):
        questions = [make_pair(f"q{i}", f"song {i}", f"song {i} remix") for i in range(3)]
        demos = [
            make_pair("d0", "alpha", "alpha", MatchLabel.MATCH),
            make_pair("d1", "beta", "gamma", MatchLabel.NON_MATCH),
        ]
        prompt = BatchPromptBuilder(ATTRIBUTES).build(questions, demos)
        parsed = read_prompt(prompt.text)

        assert len(parsed.questions) == 3
        assert len(parsed.demonstrations) == 2
        assert parsed.demonstrations[0].is_match is True
        assert parsed.demonstrations[1].is_match is False
        # Attribute values survive the serialize -> render -> read round trip.
        assert parsed.questions[0].left["title"] == "song 0"
        assert parsed.questions[2].right["title"] == "song 2 remix"
        assert parsed.demonstrations[1].right["title"] == "gamma"

    def test_round_trip_of_standard_prompt(self):
        question = make_pair("q0", "golden dragon", "golden dragon bistro")
        demos = [make_pair("d0", "x", "x", MatchLabel.MATCH)]
        prompt = StandardPromptBuilder(ATTRIBUTES).build(question, demos)
        parsed = read_prompt(prompt.text)
        assert len(parsed.questions) == 1
        assert len(parsed.demonstrations) == 1
        assert parsed.questions[0].right["title"] == "golden dragon bistro"

    def test_zero_shot_prompt_has_no_demonstrations(self):
        question = make_pair("q0", "a", "b")
        prompt = StandardPromptBuilder(ATTRIBUTES).build(question, [])
        parsed = read_prompt(prompt.text)
        assert parsed.demonstrations == ()
        assert len(parsed.questions) == 1

    def test_unrelated_text_yields_nothing(self):
        parsed = read_prompt("Hello, this text contains no entity blocks at all.")
        assert parsed.questions == ()
        assert parsed.demonstrations == ()

    def test_question_count_matches_prompt_metadata(self, beer_dataset):
        questions = list(beer_dataset.splits.test)[:8]
        demos = list(beer_dataset.splits.train)[:4]
        prompt = BatchPromptBuilder(beer_dataset.attributes).build(questions, demos)
        parsed = read_prompt(prompt.text)
        assert len(parsed.questions) == prompt.num_questions
        assert len(parsed.demonstrations) == prompt.num_demonstrations
