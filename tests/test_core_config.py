"""Tests for the framework configuration object."""

import pytest

from repro.core.config import BatcherConfig


class TestValidation:
    def test_defaults_are_the_papers_best_choice(self):
        config = BatcherConfig()
        assert config.batching == "diverse"
        assert config.selection == "covering"
        assert config.feature_extractor == "lr"
        assert config.batch_size == 8
        assert config.num_demonstrations == 8
        assert config.model == "gpt-3.5-03"
        assert config.threshold_percentile == 8.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("batching", "zigzag"),
            ("selection", "oracle"),
            ("feature_extractor", "tfidf"),
            ("model", "gpt-5"),
            ("batch_size", 0),
            ("num_demonstrations", 0),
            ("max_questions", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            BatcherConfig(**{field: value})

    @pytest.mark.parametrize("batching", ["random", "similar", "diverse"])
    @pytest.mark.parametrize("selection", ["fixed", "topk-batch", "topk-question", "covering"])
    def test_all_design_space_points_constructible(self, batching, selection):
        config = BatcherConfig(batching=batching, selection=selection)
        assert config.batching == batching
        assert config.selection == selection


class TestOverridesAndSerialisation:
    def test_with_overrides_returns_new_config(self):
        base = BatcherConfig()
        changed = base.with_overrides(batching="random", seed=9)
        assert changed.batching == "random"
        assert changed.seed == 9
        assert base.batching == "diverse"  # original untouched

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            BatcherConfig().with_overrides(selection="nope")

    def test_to_dict_round_trip(self):
        config = BatcherConfig(batching="similar", selection="topk-batch", seed=3)
        snapshot = config.to_dict()
        assert snapshot["batching"] == "similar"
        assert snapshot["selection"] == "topk-batch"
        assert BatcherConfig(**snapshot) == config

    def test_from_dict_round_trip(self):
        config = BatcherConfig(
            batching="random", selection="topk-question", seed=11, max_questions=32
        )
        assert BatcherConfig.from_dict(config.to_dict()) == config

    def test_from_dict_round_trips_run_result_snapshot(self, beer_dataset):
        from repro import BatchER

        config = BatcherConfig(seed=2, max_questions=16)
        result = BatchER(config).run(beer_dataset)
        rerun = BatchER(BatcherConfig.from_dict(result.config)).run(beer_dataset)
        assert rerun.metrics == result.metrics
        assert rerun.predictions == result.predictions

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            BatcherConfig.from_dict({"batching": "random", "typo_field": 1})

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError, match="unknown model"):
            BatcherConfig.from_dict({"model": "gpt-99"})
