"""Tests for the micro-batching ResolutionService facade."""

import threading

import pytest

from repro.core.config import BatcherConfig
from repro.data.schema import EntityPair, MatchLabel, Record
from repro.pipeline import Resolution, Resolver
from repro.service import (
    CostBudgetExceeded,
    ResolutionService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
)


@pytest.fixture()
def service_config():
    return ServiceConfig(
        batcher=BatcherConfig(seed=1), max_batch_size=16, max_wait_seconds=0.1
    )


@pytest.fixture()
def questions(beer_dataset):
    return [pair.without_label() for pair in list(beer_dataset.splits.test)[:48]]


def _started_service(beer_dataset, config) -> ResolutionService:
    return ResolutionService.from_dataset(beer_dataset, config).start()


class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.max_batch_size >= 1
        assert config.batcher.batching == "diverse"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_batch_size": 0},
            {"max_wait_seconds": -0.1},
            {"queue_capacity": 0},
            {"admission_timeout_seconds": -1.0},
            {"num_workers": 0},
            {"cache_capacity": 0},
            {"cost_budget": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServiceConfig(**overrides)

    def test_dict_roundtrip(self):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=3, batch_size=4),
            max_batch_size=8,
            cost_budget=1.5,
        )
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown service config fields"):
            ServiceConfig.from_dict({"max_batch_sizes": 8})


class TestMicroBatchingAmortization:
    def test_100_concurrent_requests_issue_fewer_llm_calls_than_pairs(
        self, beer_dataset
    ):
        # The acceptance scenario: 100 requests (80 unique + 20 duplicates)
        # submitted concurrently must share batch prompts — far fewer LLM
        # calls than pairs submitted.  The generous max_wait keeps flushes
        # near-full even under slow CI scheduling.
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=16, max_wait_seconds=0.25
        )
        unique = [pair.without_label() for pair in list(beer_dataset.splits.test)[:80]]
        workload = unique + unique[:20]
        service = _started_service(beer_dataset, config)
        try:
            futures = []
            submitted = threading.Barrier(parties=5)

            def submit(chunk):
                submitted.wait(timeout=10.0)
                futures.extend(service.submit(pair) for pair in chunk)

            threads = [
                threading.Thread(target=submit, args=(workload[i * 20 : (i + 1) * 20],))
                for i in range(5)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            resolutions = [future.result(timeout=60.0) for future in futures]
            assert len(resolutions) == 100
            stats = service.stats()
            assert stats.submitted == 100
            assert stats.resolved == 100
            # Strict amortization: well under one call per submitted pair
            # (80 unique pairs in prompt batches of 8 is 10 calls when every
            # flush fills; the bound leaves room for ragged flush boundaries).
            assert stats.llm_calls < 100
            assert stats.llm_calls <= 40
        finally:
            service.stop()

    def test_repeat_requests_hit_cache_with_zero_new_llm_calls(
        self, beer_dataset, service_config, questions
    ):
        service = _started_service(beer_dataset, service_config)
        try:
            first = service.resolve_many(questions)
            calls_after_first = service.stats().llm_calls
            assert calls_after_first > 0
            repeat = service.resolve_many(questions)
            stats = service.stats()
            assert stats.llm_calls == calls_after_first
            assert stats.cache_hits >= len(questions)
            assert [r.label for r in repeat] == [r.label for r in first]
        finally:
            service.stop()

    def test_cached_results_keyed_by_content_not_pair_id(
        self, beer_dataset, service_config, questions
    ):
        service = _started_service(beer_dataset, service_config)
        try:
            original = service.resolve_many(questions[:8])
            renamed = [
                EntityPair(pair_id=f"renamed-{i}", left=p.left, right=p.right)
                for i, p in enumerate(questions[:8])
            ]
            calls_before = service.stats().llm_calls
            re_resolved = service.resolve_many(renamed)
            assert service.stats().llm_calls == calls_before
            assert [r.label for r in re_resolved] == [r.label for r in original]
            assert [r.pair_id for r in re_resolved] == [p.pair_id for p in renamed]
        finally:
            service.stop()

    def test_duplicate_inflight_pairs_share_one_resolution(
        self, beer_dataset, service_config, questions
    ):
        # Submit the same pair many times before starting the consumer: all
        # futures must resolve identically off a single pipeline question.
        service = ResolutionService.from_dataset(beer_dataset, service_config)
        futures = [service.submit(questions[0]) for _ in range(10)]
        futures += [service.submit(pair) for pair in questions[1:9]]
        service.start()
        try:
            resolutions = [future.result(timeout=60.0) for future in futures]
            labels = {r.label for r in resolutions[:10]}
            assert len(labels) == 1
            stats = service.stats()
            assert stats.inflight_joined == 9
            assert stats.flushes == 1  # 9 unique pairs -> one micro-batch
        finally:
            service.stop()

    def test_deterministic_for_fixed_seed(self, beer_dataset, service_config, questions):
        def run_once() -> list[MatchLabel]:
            service = ResolutionService.from_dataset(beer_dataset, service_config)
            futures = [service.submit(pair) for pair in questions]
            service.start()
            try:
                return [future.result(timeout=60.0).label for future in futures]
            finally:
                service.stop()

        assert run_once() == run_once()


class TestEdgeCases:
    def test_empty_request_batch_is_a_noop(self, beer_dataset, service_config):
        service = _started_service(beer_dataset, service_config)
        try:
            assert service.resolve_many([]) == []
            service._flush([])  # a degenerate flush must not raise
            assert service.stats().llm_calls == 0
        finally:
            service.stop()

    def test_duplicate_pair_ids_with_different_content_in_one_flush(
        self, beer_dataset, service_config, questions
    ):
        # Same pair_id, different records: both must be resolved on their own
        # contents (the cache keys on content, never on pair_id).
        clash_a = EntityPair(pair_id="clash", left=questions[0].left, right=questions[0].right)
        clash_b = EntityPair(pair_id="clash", left=questions[1].left, right=questions[1].right)
        service = ResolutionService.from_dataset(beer_dataset, service_config)
        futures = [service.submit(clash_a), service.submit(clash_b)]
        service.start()
        try:
            first, second = [future.result(timeout=60.0) for future in futures]
            assert first.pair_id == second.pair_id == "clash"
            # Each resolution carries the submitter's own pair: the two
            # entries were treated as distinct questions, not collapsed by id.
            assert first.pair is clash_a
            assert second.pair is clash_b
            assert service.stats().flushes == 1
        finally:
            service.stop()

    def test_flush_smaller_than_batch_size(self, beer_dataset, questions):
        # 3 pairs against batcher.batch_size=8: a single undersized prompt
        # batch must still parse (including the 1-question standard-style
        # answer fallback) and resolve every pair.
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=16, max_wait_seconds=0.02
        )
        service = _started_service(beer_dataset, config)
        try:
            resolutions = service.resolve_many(questions[:3])
            assert len(resolutions) == 3
            assert service.stats().llm_calls == 1
        finally:
            service.stop()

    def test_single_pair_flush_still_answered(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        try:
            [resolution] = service.resolve_many(questions[:1])
            assert resolution.answered  # standard-style answer fallback parses
        finally:
            service.stop()


class TestAdmission:
    def test_cost_budget_rejects_new_work_but_serves_cache(
        self, beer_dataset, questions
    ):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=16,
            max_wait_seconds=0.02,
            cost_budget=0.0001,  # exhausted by the first flush
        )
        # Submit the warm-up set before the consumer starts, so admission sees
        # an unspent budget for all eight and the budget is only exhausted by
        # the flush itself.
        service = ResolutionService.from_dataset(beer_dataset, config)
        futures = [service.submit(pair) for pair in questions[:8]]
        service.start()
        try:
            warm = [future.result(timeout=60.0) for future in futures]
            assert len(warm) == 8
            with pytest.raises(CostBudgetExceeded, match="budget"):
                service.submit(questions[20])
            # Cached pairs are still served after exhaustion.
            cached = service.resolve_many(questions[:8])
            assert [r.label for r in cached] == [r.label for r in warm]
            assert service.stats().rejected_budget == 1
        finally:
            service.stop()

    def test_overload_rejected_with_backpressure(self, beer_dataset, questions):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=4,
            queue_capacity=4,
            admission_timeout_seconds=0.02,
        )
        # Consumer never started: the queue fills and stays full.
        service = ResolutionService.from_dataset(beer_dataset, config)
        for pair in questions[:4]:
            service.submit(pair)
        with pytest.raises(ServiceOverloaded, match="queue full"):
            service.submit(questions[4])
        assert service.stats().rejected_overload == 1
        assert service.stats().queue_depth == 4
        service.start()
        try:
            service.resolve_many(questions[5:7])  # drained queue admits again
        finally:
            service.stop()

    def test_overload_fails_joined_duplicate_futures(self, beer_dataset, questions):
        # A duplicate that joined an in-flight request must not hang forever
        # when the original submission is rejected by backpressure.
        import time as time_module

        from repro.service import pair_fingerprint

        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            queue_capacity=1,
            admission_timeout_seconds=0.5,
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        service.submit(questions[0])  # fills the queue (consumer not started)
        errors: list[Exception] = []

        def blocked_submit():
            try:
                service.submit(questions[1])
            except ServiceOverloaded as error:
                errors.append(error)

        blocker = threading.Thread(target=blocked_submit)
        blocker.start()
        # The blocked submitter registers its in-flight entry *before* it
        # blocks on the full queue; wait for that, then join it.
        fingerprint = pair_fingerprint(questions[1])
        deadline = time_module.monotonic() + 5.0
        while fingerprint not in service._inflight:
            assert time_module.monotonic() < deadline, "in-flight entry never appeared"
            time_module.sleep(0.005)
        joined = service.submit(questions[1])
        blocker.join(timeout=5.0)
        assert errors, "the blocked submitter must be rejected"
        with pytest.raises(ServiceOverloaded):
            joined.result(timeout=5.0)

    def test_unanswered_resolutions_are_not_cached(self, beer_dataset, service_config):
        from repro.llm.simulated import SimulatedLLM

        class MuteLLM(SimulatedLLM):
            def _generate(self, prompt_text):
                return "I would rather not say."  # never parseable

        resolver = Resolver(
            config=service_config.batcher,
            demonstrations=list(beer_dataset.splits.train),
            attributes=beer_dataset.attributes,
            llm=MuteLLM("gpt-3.5-03", seed=1),
        )
        service = ResolutionService(config=service_config, resolver=resolver).start()
        try:
            questions = [p.without_label() for p in list(beer_dataset.splits.test)[:4]]
            first = service.resolve_many(questions)
            assert all(not r.answered for r in first)
            calls_after_first = service.stats().llm_calls
            service.resolve_many(questions)  # must retry, not serve fallbacks
            assert service.stats().llm_calls > calls_after_first
            assert len(service.cache) == 0
        finally:
            service.stop()

    def test_budget_exhaustion_still_joins_inflight_duplicates(
        self, beer_dataset, questions
    ):
        # In-flight joins cost no new LLM work, so they are admitted even
        # once the budget is spent.
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1),
            max_batch_size=16,
            max_wait_seconds=0.02,
            cost_budget=0.0001,
        )
        service = ResolutionService.from_dataset(beer_dataset, config)
        pending = service.submit(questions[0])  # in flight (consumer not started)
        # Exhaust the budget on the shared session behind the service's back.
        service.resolver.resolve(questions[8:16])
        assert service.resolver.cost().total_cost > config.cost_budget
        with pytest.raises(CostBudgetExceeded):
            service.submit(questions[1])  # new work: rejected
        duplicate = service.submit(questions[0])  # join: still admitted
        service.start()
        try:
            assert pending.result(timeout=60.0).label is duplicate.result(
                timeout=60.0
            ).label
            assert service.stats().inflight_joined == 1
        finally:
            service.stop()

    def test_submit_after_stop_rejected(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        service.stop()
        with pytest.raises(ServiceClosed):
            service.submit(questions[0])
        with pytest.raises(ServiceClosed):
            service.start()


class TestServiceLifecycle:
    def test_context_manager_starts_and_stops(self, beer_dataset, service_config, questions):
        with ResolutionService.from_dataset(beer_dataset, service_config) as service:
            assert service.running
            assert service.resolve_many(questions[:4])
        assert not service.running

    def test_start_warms_resolver_pool(self, beer_dataset, service_config):
        service = ResolutionService.from_dataset(beer_dataset, service_config)
        assert service.resolver._pool_features_cache is None
        service.start()
        try:
            assert service.resolver._pool_features_cache is not None
        finally:
            service.stop()

    def test_spill_and_warm_start_across_restarts(
        self, beer_dataset, service_config, questions, tmp_path
    ):
        spill = str(tmp_path / "service-cache.jsonl")
        config = service_config.with_overrides(spill_path=spill)
        first_service = _started_service(beer_dataset, config)
        first = first_service.resolve_many(questions[:8])
        first_service.stop()  # spills the cache

        second_service = _started_service(beer_dataset, config)
        try:
            revived = second_service.resolve_many(questions[:8])
            assert second_service.stats().llm_calls == 0  # pure warm-start hits
            assert [r.label for r in revived] == [r.label for r in first]
        finally:
            second_service.stop()

    def test_cancelled_future_does_not_kill_the_consumer(
        self, beer_dataset, service_config, questions
    ):
        service = ResolutionService.from_dataset(beer_dataset, service_config)
        doomed = service.submit(questions[0])
        assert doomed.cancel()  # pending future: cancellation succeeds
        service.start()
        try:
            # The flush containing the cancelled future must not crash the
            # consumer; later submissions still resolve normally.
            survivors = service.resolve_many(questions[1:5])
            assert len(survivors) == 4
            assert service.running
        finally:
            service.stop()

    def test_stop_before_start_does_not_truncate_spill_file(
        self, beer_dataset, service_config, questions, tmp_path
    ):
        spill = tmp_path / "cache.jsonl"
        config = service_config.with_overrides(spill_path=str(spill))
        seeded = _started_service(beer_dataset, config)
        seeded.resolve_many(questions[:8])
        seeded.stop()
        persisted = spill.read_text(encoding="utf-8")
        assert persisted.strip()
        # A service that never started (e.g. failed setup cleaned up via
        # stop()) must not overwrite the previous session's cache.
        ResolutionService.from_dataset(beer_dataset, config).stop()
        assert spill.read_text(encoding="utf-8") == persisted

    def test_stats_snapshot_shape(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        try:
            service.resolve_many(questions[:8])
            stats = service.stats()
            assert stats.resolved == 8
            assert stats.pool_size == service.resolver.pool_size
            assert stats.uptime_seconds > 0
            assert stats.throughput_pairs_per_second > 0
            payload = stats.to_dict()
            assert payload["cost"]["total_cost"] == pytest.approx(
                service.resolver.cost().total_cost
            )
            assert 0.0 <= payload["cache_hit_rate"] <= 1.0
        finally:
            service.stop()

    def test_shared_resolver_session_is_exposed(self, beer_dataset, service_config, questions):
        resolver = Resolver.from_dataset(beer_dataset, service_config.batcher)
        service = ResolutionService(config=service_config, resolver=resolver).start()
        try:
            resolutions = service.resolve_many(questions[:4])
            assert all(isinstance(r, Resolution) for r in resolutions)
            assert service.resolver is resolver
            assert resolver.num_resolved == 4
        finally:
            service.stop()


class TestBulkResolve:
    def test_bulk_resolves_in_input_order(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        try:
            resolutions = service.resolve_bulk(questions)
            assert [r.pair_id for r in resolutions] == [p.pair_id for p in questions]
            assert all(isinstance(r, Resolution) for r in resolutions)
        finally:
            service.stop()

    def test_bulk_ticks_engine_counters(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        try:
            service.resolve_bulk(questions, shards=3)
            engine = service.stats().engine
            assert engine.bulk_requests == 1
            assert engine.bulk_pairs == len(questions)
            assert 1 <= engine.shards_resolved <= 3
            assert engine.pairs_resolved == len(questions)
            payload = service.stats().to_dict()["engine"]
            assert payload["bulk_pairs"] == len(questions)
        finally:
            service.stop()

    def test_repeat_bulk_is_served_from_cache(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        try:
            service.resolve_bulk(questions)
            calls_before = service.resolver.usage.num_calls
            again = service.resolve_bulk(questions)
            assert service.resolver.usage.num_calls == calls_before
            assert len(again) == len(questions)
            assert service.stats().engine.pairs_from_cache >= len(
                [r for r in again if r.answered]
            )
        finally:
            service.stop()

    def test_bulk_deduplicates_within_one_submission(
        self, beer_dataset, service_config, questions
    ):
        service = _started_service(beer_dataset, service_config)
        try:
            doubled = questions[:8] + questions[:8]
            resolutions = service.resolve_bulk(doubled)
            assert len(resolutions) == 16
            # Duplicate contents resolve identically and are only paid once.
            for first, second in zip(resolutions[:8], resolutions[8:]):
                assert first.label == second.label
            assert service.stats().engine.pairs_resolved <= 8
        finally:
            service.stop()

    def test_bulk_sharding_does_not_change_labels(
        self, beer_dataset, service_config, questions
    ):
        one = _started_service(beer_dataset, service_config)
        try:
            single = [int(r.label) for r in one.resolve_bulk(questions, shards=1)]
        finally:
            one.stop()
        # Shard composition changes which pairs share a prompt, so labels may
        # legitimately differ between shard counts -- but each shard count must
        # be deterministic.
        many = _started_service(beer_dataset, service_config)
        try:
            first = [int(r.label) for r in many.resolve_bulk(questions, shards=4)]
        finally:
            many.stop()
        again = _started_service(beer_dataset, service_config)
        try:
            second = [int(r.label) for r in again.resolve_bulk(questions, shards=4)]
        finally:
            again.stop()
        assert first == second
        assert len(single) == len(first) == len(questions)

    def test_bulk_respects_the_cost_budget(self, beer_dataset, questions):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=16, cost_budget=1e-9
        )
        service = _started_service(beer_dataset, config)
        try:
            # Admission checks *recorded* cost, so the first (cheap) bulk call
            # is admitted and exhausts the tiny budget...
            spent = service.resolve_bulk(questions[:2])
            assert len(spent) == 2
            # ...after which new uncached work is rejected, while already
            # cached contents still resolve.
            with pytest.raises(CostBudgetExceeded):
                service.resolve_bulk(questions[2:])
            cached_again = service.resolve_bulk(questions[:2])
            assert [int(r.label) for r in cached_again] == [int(r.label) for r in spent]
        finally:
            service.stop()

    def test_bulk_joins_inflight_pairs_instead_of_repaying(
        self, beer_dataset, service_config, questions
    ):
        """A pair already pending on the micro-batch path must not be paid for
        again by a bulk request — the bulk path joins the in-flight
        resolution."""
        service = ResolutionService.from_dataset(beer_dataset, service_config)
        # Queue a pair before the consumer starts: it stays in-flight.
        pending_future = service.submit(questions[0])
        joined_before = service.stats().inflight_joined
        bulk_done = []

        def run_bulk():
            bulk_done.append(service.resolve_bulk(questions[:4]))

        worker = threading.Thread(target=run_bulk)
        worker.start()
        # The bulk call blocks on the joined future until the consumer runs.
        service.start()
        worker.join(timeout=30.0)
        try:
            assert not worker.is_alive()
            [bulk_resolutions] = bulk_done
            assert bulk_resolutions[0].label == pending_future.result(timeout=10.0).label
            stats = service.stats()
            assert stats.inflight_joined == joined_before + 1
            # The joined pair was not resolved twice: bulk resolved only the
            # three pairs that were not already in flight.
            assert stats.engine.pairs_resolved == 3
        finally:
            service.stop()

    def test_bulk_enforces_a_per_shard_ceiling(self, beer_dataset, questions):
        """An explicit low shard count must not produce one giant
        lock-holding shard: the engine raises the count so no shard exceeds
        batch_size**2 pairs."""
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1, batch_size=2), max_batch_size=16
        )
        service = _started_service(beer_dataset, config)
        try:
            service.resolve_bulk(questions[:20], shards=1)  # ceiling = 4 pairs
            assert service.stats().engine.shards_resolved >= 5
        finally:
            service.stop()

    def test_bulk_budget_is_rechecked_between_shards(self, beer_dataset, questions):
        """One oversized bulk request must not blow arbitrarily past the
        budget: the check runs per shard, so the overshoot is bounded by one
        shard and already-resolved shards stay cached."""
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=16, cost_budget=1e-9
        )
        service = _started_service(beer_dataset, config)
        try:
            with pytest.raises(CostBudgetExceeded):
                service.resolve_bulk(questions, shards=4)
            resolved = service.stats().engine.pairs_resolved
            assert 0 < resolved < len(questions)  # stopped after one shard
        finally:
            service.stop()

    def test_bulk_counters_reflect_completed_work_only(self, beer_dataset, questions):
        config = ServiceConfig(
            batcher=BatcherConfig(seed=1), max_batch_size=16, cost_budget=1e-9
        )
        service = _started_service(beer_dataset, config)
        try:
            with pytest.raises(CostBudgetExceeded):
                service.resolve_bulk(questions, shards=4)
            engine = service.stats().engine
            # Only the shard that actually resolved is counted.
            assert engine.shards_resolved == 1
            assert engine.pairs_resolved < len(questions)
        finally:
            service.stop()

    def test_bulk_after_stop_is_rejected(self, beer_dataset, service_config, questions):
        service = _started_service(beer_dataset, service_config)
        service.stop()
        with pytest.raises(ServiceClosed):
            service.resolve_bulk(questions)

    def test_empty_bulk_is_a_noop(self, beer_dataset, service_config):
        service = _started_service(beer_dataset, service_config)
        try:
            assert service.resolve_bulk([]) == []
        finally:
            service.stop()
