"""Tests for the question batching strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching import (
    DiversityQuestionBatcher,
    QuestionBatch,
    RandomQuestionBatcher,
    SimilarityQuestionBatcher,
    create_batcher,
    validate_batching,
)
from repro.data.schema import EntityPair, MatchLabel, Record

ALL_BATCHERS = (RandomQuestionBatcher, SimilarityQuestionBatcher, DiversityQuestionBatcher)


def make_questions(count):
    return [
        EntityPair(
            pair_id=f"q{i}",
            left=Record(f"A-{i}", {"name": f"left {i}"}),
            right=Record(f"B-{i}", {"name": f"right {i}"}),
            label=MatchLabel.NON_MATCH,
        )
        for i in range(count)
    ]


def clustered_features(cluster_sizes, separation=10.0, seed=0):
    """Feature matrix with well-separated clusters of the given sizes."""
    rng = np.random.default_rng(seed)
    blocks = []
    for cluster_index, size in enumerate(cluster_sizes):
        center = np.array([cluster_index * separation, cluster_index * separation])
        blocks.append(center + rng.normal(scale=0.05, size=(size, 2)))
    return np.vstack(blocks)


class TestQuestionBatchValue:
    def test_length_mismatch_rejected(self):
        questions = make_questions(2)
        with pytest.raises(ValueError):
            QuestionBatch(batch_id=0, indices=(0,), pairs=tuple(questions))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            QuestionBatch(batch_id=0, indices=(), pairs=())


class TestValidation:
    def test_validate_accepts_partition(self):
        questions = make_questions(5)
        batches = [
            QuestionBatch(0, (0, 1, 2), tuple(questions[:3])),
            QuestionBatch(1, (3, 4), tuple(questions[3:])),
        ]
        validate_batching(batches, num_questions=5, batch_size=3)

    def test_validate_rejects_duplicates(self):
        questions = make_questions(3)
        batches = [
            QuestionBatch(0, (0, 1), tuple(questions[:2])),
            QuestionBatch(1, (1, 2), tuple(questions[1:])),
        ]
        with pytest.raises(ValueError, match="more than one batch"):
            validate_batching(batches, num_questions=3, batch_size=2)

    def test_validate_rejects_missing_questions(self):
        questions = make_questions(3)
        batches = [QuestionBatch(0, (0, 1), tuple(questions[:2]))]
        with pytest.raises(ValueError, match="missing"):
            validate_batching(batches, num_questions=3, batch_size=2)

    def test_validate_rejects_oversized_batches(self):
        questions = make_questions(3)
        batches = [QuestionBatch(0, (0, 1, 2), tuple(questions))]
        with pytest.raises(ValueError, match="exceeding"):
            validate_batching(batches, num_questions=3, batch_size=2)


class TestCommonBatcherBehaviour:
    @pytest.mark.parametrize("batcher_class", ALL_BATCHERS)
    def test_every_question_in_exactly_one_batch(self, batcher_class):
        questions = make_questions(23)
        features = clustered_features((8, 7, 8))
        batches = batcher_class(batch_size=5, seed=0).create_batches(questions, features)
        validate_batching(batches, num_questions=23, batch_size=5)

    @pytest.mark.parametrize("batcher_class", ALL_BATCHERS)
    def test_empty_question_set(self, batcher_class):
        batches = batcher_class(batch_size=4).create_batches([], np.zeros((0, 2)))
        assert batches == []

    @pytest.mark.parametrize("batcher_class", ALL_BATCHERS)
    def test_fewer_questions_than_batch_size(self, batcher_class):
        questions = make_questions(3)
        features = clustered_features((3,))
        batches = batcher_class(batch_size=8, seed=0).create_batches(questions, features)
        validate_batching(batches, num_questions=3, batch_size=8)
        assert len(batches) == 1

    @pytest.mark.parametrize("batcher_class", ALL_BATCHERS)
    def test_deterministic_given_seed(self, batcher_class):
        questions = make_questions(17)
        features = clustered_features((6, 6, 5))
        first = batcher_class(batch_size=4, seed=3).create_batches(questions, features)
        second = batcher_class(batch_size=4, seed=3).create_batches(questions, features)
        assert [batch.indices for batch in first] == [batch.indices for batch in second]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            RandomQuestionBatcher(batch_size=0)

    @pytest.mark.parametrize("batcher_class", ALL_BATCHERS)
    @given(num_questions=st.integers(1, 40), batch_size=st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_partition_property(self, batcher_class, num_questions, batch_size):
        questions = make_questions(num_questions)
        rng = np.random.default_rng(0)
        features = rng.random((num_questions, 3))
        batches = batcher_class(batch_size=batch_size, seed=1).create_batches(questions, features)
        validate_batching(batches, num_questions=num_questions, batch_size=batch_size)


class TestSimilarityBatching:
    def test_batches_stay_within_clusters(self):
        # Three clusters of exactly the batch size: every batch must be pure.
        questions = make_questions(12)
        features = clustered_features((4, 4, 4))
        batches = SimilarityQuestionBatcher(batch_size=4, seed=0).create_batches(questions, features)
        cluster_of = {index: index // 4 for index in range(12)}
        for batch in batches:
            assert len({cluster_of[index] for index in batch.indices}) == 1

    def test_remainder_merging(self):
        # Cluster sizes 5 and 3 with batch size 4: one pure batch of 4, then the
        # remaining 1 + 3 are merged into a complete batch (paper's rule).
        questions = make_questions(8)
        features = clustered_features((5, 3))
        batches = SimilarityQuestionBatcher(batch_size=4, seed=0).create_batches(questions, features)
        assert sorted(len(batch) for batch in batches) == [4, 4]


class TestDiversityBatching:
    def test_batches_span_clusters(self):
        # Four clusters of four questions with batch size 4: every batch should
        # draw from 4 different clusters.
        questions = make_questions(16)
        features = clustered_features((4, 4, 4, 4))
        batches = DiversityQuestionBatcher(batch_size=4, seed=0).create_batches(questions, features)
        cluster_of = {index: index // 4 for index in range(16)}
        for batch in batches:
            assert len({cluster_of[index] for index in batch.indices}) == 4

    def test_round_robin_when_clusters_exhausted(self):
        # Two clusters, batch size 4: batches must still be full-sized where
        # possible, topping up round-robin from the remaining clusters.
        questions = make_questions(10)
        features = clustered_features((6, 4))
        batches = DiversityQuestionBatcher(batch_size=4, seed=0).create_batches(questions, features)
        validate_batching(batches, num_questions=10, batch_size=4)
        assert sorted(len(batch) for batch in batches) == [2, 4, 4]


class TestFactory:
    def test_known_strategies(self):
        assert isinstance(create_batcher("random"), RandomQuestionBatcher)
        assert isinstance(create_batcher("similarity-based"), SimilarityQuestionBatcher)
        assert isinstance(create_batcher("diversity"), DiversityQuestionBatcher)

    def test_batch_size_forwarded(self):
        assert create_batcher("diverse", batch_size=5).batch_size == 5

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown batching strategy"):
            create_batcher("zigzag")
