"""Tests for the demonstration selection strategies."""

import numpy as np
import pytest

from repro.batching import DiversityQuestionBatcher, RandomQuestionBatcher
from repro.clustering.distance import cross_distances
from repro.selection import (
    CoveringSelector,
    FixedDemonstrationSelector,
    TopKBatchSelector,
    TopKQuestionSelector,
    create_selector,
)

ALL_SELECTORS = (
    FixedDemonstrationSelector,
    TopKBatchSelector,
    TopKQuestionSelector,
    CoveringSelector,
)


@pytest.fixture(scope="module")
def beer_batches(beer_questions, beer_question_features):
    batcher = DiversityQuestionBatcher(batch_size=8, seed=0)
    return batcher.create_batches(beer_questions, beer_question_features)


class TestCommonSelectorBehaviour:
    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_one_demo_list_per_batch(
        self, selector_class, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = selector_class(num_demonstrations=8, seed=0)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert len(result.per_batch) == len(beer_batches)
        for batch, batch_demos in zip(beer_batches, result.per_batch):
            assert batch_demos.batch_id == batch.batch_id
            assert len(batch_demos) >= 1
            assert all(demo.is_labeled for demo in batch_demos.demonstrations)

    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_labeled_indices_cover_all_used_demos(
        self, selector_class, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = selector_class(num_demonstrations=8, seed=0)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        used = set()
        for batch_demos in result.per_batch:
            used.update(batch_demos.pool_indices)
        assert used == set(result.labeled_pool_indices)
        assert result.num_labeled == len(used)

    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_empty_pool_rejected(self, selector_class, beer_batches, beer_question_features):
        selector = selector_class(num_demonstrations=4)
        with pytest.raises(ValueError, match="pool is empty"):
            selector.select(beer_batches, beer_question_features, [], np.zeros((0, 4)))

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            FixedDemonstrationSelector(num_demonstrations=0)


class TestFixedSelector:
    def test_same_demonstrations_for_every_batch(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = FixedDemonstrationSelector(num_demonstrations=8, seed=1)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        first = result.per_batch[0].pool_indices
        assert all(batch.pool_indices == first for batch in result.per_batch)
        assert result.num_labeled == len(first) <= 8

    def test_fixed_set_is_label_balanced_when_possible(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = FixedDemonstrationSelector(num_demonstrations=8, seed=1)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        labels = {int(demo.label) for demo in result.per_batch[0].demonstrations}
        assert labels == {0, 1}

    def test_different_seeds_pick_different_sets(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        first = FixedDemonstrationSelector(num_demonstrations=8, seed=1).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        second = FixedDemonstrationSelector(num_demonstrations=8, seed=2).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert first.labeled_pool_indices != second.labeled_pool_indices


class TestTopKBatchSelector:
    def test_selects_nearest_by_batch_distance(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = TopKBatchSelector(num_demonstrations=4, seed=0)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        distances = cross_distances(beer_question_features, beer_pool_features)
        for batch, batch_demos in zip(beer_batches, result.per_batch):
            batch_to_pool = distances[list(batch.indices), :].min(axis=0)
            expected = set(np.argsort(batch_to_pool, kind="stable")[:4].tolist())
            assert set(batch_demos.pool_indices) == expected

    def test_budget_respected(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = TopKBatchSelector(num_demonstrations=3)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert all(len(batch) <= 3 for batch in result.per_batch)


class TestTopKQuestionSelector:
    def test_per_question_nearest_included(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        selector = TopKQuestionSelector(num_demonstrations=8, per_question_k=1, seed=0)
        result = selector.select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        distances = cross_distances(beer_question_features, beer_pool_features)
        for batch, batch_demos in zip(beer_batches, result.per_batch):
            for question_index in batch.indices:
                nearest = int(np.argsort(distances[question_index], kind="stable")[0])
                assert nearest in batch_demos.pool_indices

    def test_k_derived_from_budget(self, beer_batches):
        selector = TopKQuestionSelector(num_demonstrations=16)
        assert selector._resolve_k(beer_batches[0]) == max(1, 16 // len(beer_batches[0]))

    def test_invalid_per_question_k(self):
        with pytest.raises(ValueError):
            TopKQuestionSelector(per_question_k=0)

    def test_costs_more_labels_than_fixed(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        fixed = FixedDemonstrationSelector(num_demonstrations=8, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        topk = TopKQuestionSelector(num_demonstrations=8, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert topk.num_labeled > fixed.num_labeled


class TestSelectionResult:
    def test_demonstrations_for_lookup(
        self, beer_batches, beer_question_features, beer_pool, beer_pool_features
    ):
        result = FixedDemonstrationSelector(num_demonstrations=4, seed=0).select(
            beer_batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert result.demonstrations_for(0).batch_id == 0
        with pytest.raises(KeyError):
            result.demonstrations_for(10_000)


class TestFactory:
    def test_known_strategies(self):
        assert isinstance(create_selector("fixed"), FixedDemonstrationSelector)
        assert isinstance(create_selector("topk-batch"), TopKBatchSelector)
        assert isinstance(create_selector("topk_question"), TopKQuestionSelector)
        assert isinstance(create_selector("cover"), CoveringSelector)

    def test_parameters_forwarded(self):
        selector = create_selector("covering", num_demonstrations=5, threshold_percentile=12.0)
        assert selector.num_demonstrations == 5
        assert selector.threshold_percentile == 12.0

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown selection strategy"):
            create_selector("zero-shot")


class TestRandomBatcherIntegration:
    def test_selection_works_with_random_batching(
        self, beer_questions, beer_question_features, beer_pool, beer_pool_features
    ):
        batches = RandomQuestionBatcher(batch_size=8, seed=2).create_batches(
            beer_questions, beer_question_features
        )
        result = CoveringSelector(num_demonstrations=8, seed=2).select(
            batches, beer_question_features, beer_pool, beer_pool_features
        )
        assert len(result.per_batch) == len(batches)
