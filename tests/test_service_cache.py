"""Tests for the pair-level result cache and canonical fingerprints."""

import pytest

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.service import CachedResult, ResultCache, pair_fingerprint


def _pair(pair_id: str, left: dict, right: dict) -> EntityPair:
    return EntityPair(
        pair_id=pair_id,
        left=Record(record_id=f"{pair_id}-L", values=left),
        right=Record(record_id=f"{pair_id}-R", values=right),
    )


class TestPairFingerprint:
    def test_ignores_pair_and_record_ids(self):
        a = _pair("p1", {"name": "ipa"}, {"name": "IPA"})
        b = _pair("totally-different-id", {"name": "ipa"}, {"name": "IPA"})
        assert pair_fingerprint(a) == pair_fingerprint(b)

    def test_content_sensitive(self):
        a = _pair("p", {"name": "ipa"}, {"name": "IPA"})
        b = _pair("p", {"name": "ipa"}, {"name": "stout"})
        assert pair_fingerprint(a) != pair_fingerprint(b)

    def test_attribute_order_normalised(self):
        a = _pair("p", {"name": "x", "abv": "5"}, {"name": "y"})
        b = _pair("p", {"abv": "5", "name": "x"}, {"name": "y"})
        assert pair_fingerprint(a) == pair_fingerprint(b)

    def test_directed_sides(self):
        # ER pairs are table A vs. table B: swapping sides is a different pair.
        a = _pair("p", {"name": "x"}, {"name": "y"})
        b = _pair("p", {"name": "y"}, {"name": "x"})
        assert pair_fingerprint(a) != pair_fingerprint(b)

    def test_missing_values_ignored(self):
        a = _pair("p", {"name": "x", "abv": None}, {"name": "y"})
        b = _pair("p", {"name": "x"}, {"name": "y"})
        assert pair_fingerprint(a) == pair_fingerprint(b)

    def test_value_boundaries_unambiguous(self):
        # "ab"+"c" on one attribute must not collide with "a"+"bc".
        a = _pair("p", {"x": "ab", "y": "c"}, {"x": "q"})
        b = _pair("p", {"x": "a", "y": "bc"}, {"x": "q"})
        assert pair_fingerprint(a) != pair_fingerprint(b)

    def test_hostile_separator_bytes_cannot_collide(self):
        # Length-prefixed encoding: client-controlled strings containing
        # would-be separator bytes must not alias a different record shape.
        a = _pair("p", {"a": "b\x1ec\x1fd"}, {"x": "q"})
        b = _pair("p", {"a": "b", "c": "d"}, {"x": "q"})
        assert pair_fingerprint(a) != pair_fingerprint(b)
        c = _pair("p", {"a": "1:x"}, {"x": "q"})
        d = _pair("p", {"a": "1", ":": "x"}, {"x": "q"})
        assert pair_fingerprint(c) != pair_fingerprint(d)

    def test_stable_across_processes(self):
        # blake2b of the canonical encoding — not Python hash(); pin one value
        # so spill files stay valid across runs and machines.
        fingerprint = pair_fingerprint(_pair("p", {"name": "x"}, {"name": "y"}))
        assert fingerprint == pair_fingerprint(_pair("p2", {"name": "x"}, {"name": "y"}))
        assert len(fingerprint) == 32
        assert all(c in "0123456789abcdef" for c in fingerprint)


class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache(capacity=4)
        cache.put("fp1", CachedResult(label=MatchLabel.MATCH, answered=True))
        entry = cache.get("fp1")
        assert entry is not None
        assert entry.label is MatchLabel.MATCH
        assert entry.answered
        assert cache.get("missing") is None

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", CachedResult(MatchLabel.MATCH, True))
        cache.put("b", CachedResult(MatchLabel.NON_MATCH, True))
        cache.get("a")  # refresh a's recency; b is now LRU
        cache.put("c", CachedResult(MatchLabel.MATCH, False))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_hit_rate_accounting(self):
        cache = ResultCache(capacity=4)
        assert cache.hit_rate == 0.0
        cache.put("a", CachedResult(MatchLabel.MATCH, True))
        cache.get("a")
        cache.get("a")
        cache.get("miss")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=0)

    def test_spill_and_warm_start_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "cache.jsonl"
        cache = ResultCache(capacity=8)
        cache.put("fp1", CachedResult(MatchLabel.MATCH, True))
        cache.put("fp2", CachedResult(MatchLabel.NON_MATCH, False))
        assert cache.spill(path) == 2

        warmed = ResultCache(capacity=8)
        assert warmed.warm_start(path) == 2
        assert warmed.get("fp1") == CachedResult(MatchLabel.MATCH, True)
        assert warmed.get("fp2") == CachedResult(MatchLabel.NON_MATCH, False)

    def test_warm_start_missing_file_is_noop(self, tmp_path):
        cache = ResultCache(capacity=4)
        assert cache.warm_start(tmp_path / "absent.jsonl") == 0
        assert len(cache) == 0

    def test_warm_start_rejects_interior_corruption(self, tmp_path):
        # Corruption followed by more entries cannot be a torn append — the
        # file is damaged and warm-start must refuse it, naming the line.
        path = tmp_path / "bad.jsonl"
        good = ResultCache(capacity=4)
        good.put("fp1", CachedResult(MatchLabel.MATCH, True))
        good.spill(path)
        content = path.read_text(encoding="utf-8")
        path.write_text(
            '{"fingerprint": "x"}\n' + content, encoding="utf-8"
        )
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            ResultCache(capacity=4).warm_start(path)

    def test_warm_start_tolerates_torn_final_line(self, tmp_path):
        # A crash mid-spill leaves a truncated final line; the entries before
        # it must still warm-start.
        path = tmp_path / "torn.jsonl"
        cache = ResultCache(capacity=8)
        cache.put("fp1", CachedResult(MatchLabel.MATCH, True))
        cache.put("fp2", CachedResult(MatchLabel.NON_MATCH, False))
        cache.spill(path)
        content = path.read_text(encoding="utf-8")
        torn = content + '{"fingerprint": "fp3", "lab'  # no newline: torn write
        path.write_text(torn, encoding="utf-8")

        warmed = ResultCache(capacity=8)
        assert warmed.warm_start(path) == 2
        assert warmed.get("fp1") == CachedResult(MatchLabel.MATCH, True)
        assert warmed.get("fp2") == CachedResult(MatchLabel.NON_MATCH, False)
        assert len(warmed) == 2

    def test_warm_start_tolerates_single_torn_line(self, tmp_path):
        # Degenerate torn tail: the crash struck the very first entry.
        path = tmp_path / "torn1.jsonl"
        path.write_text('{"fingerpr', encoding="utf-8")
        cache = ResultCache(capacity=4)
        assert cache.warm_start(path) == 0
        assert len(cache) == 0

    def test_warm_start_respects_capacity(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        big = ResultCache(capacity=8)
        for index in range(8):
            big.put(f"fp{index}", CachedResult(MatchLabel.MATCH, True))
        big.spill(path)

        small = ResultCache(capacity=3)
        small.warm_start(path)
        # Spill is oldest-first, so the newest three entries survive.
        assert len(small) == 3
        assert "fp7" in small and "fp5" in small
        assert "fp0" not in small
