"""Tests for the resilience layer: breaker, deadline budgets, degradation.

Everything runs on virtual time (:class:`~repro.engines.faults.FakeClock`) —
outage windows, cooldowns and backoff schedules are asserted in microseconds
with zero real sleeps.  Coverage spans all three wiring layers:

* the :class:`CircuitBreaker` / :class:`DeadlineBudget` state machines alone;
* :class:`~repro.engines.transport.RetryingTransport` consulting the breaker
  per attempt (fast-fail, probe recovery) and the ambient deadline (backoff
  refusal);
* :class:`~repro.service.ResolutionService` degraded mode (cache and joins
  served, new work refused) plus the HTTP liveness/readiness split;
* :class:`~repro.engine.engine.RunEngine` treating an open breaker as
  checkpoint-then-pause with a zero-repeated-calls resume.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.schema import EntityPair, Record
from repro.engine import RunEngine
from repro.engines.faults import FakeClock, ScriptedTransport
from repro.engines.transport import (
    RetryPolicy,
    RetryableTransportError,
    RetryingTransport,
    TerminalTransportError,
    TransportRequest,
)
from repro.llm.base import LLMClient
from repro.llm.registry import create_llm
from repro.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.service import ResolutionService, ServiceConfig, ServiceDegraded
from repro.service.http import ServiceHTTPServer

REQUEST = TransportRequest(url="https://api.test/v1/x", payload={"k": "v"})


def _pair(name: str) -> EntityPair:
    values = {"name": name}
    return EntityPair(
        pair_id=f"p-{name}",
        left=Record(record_id=f"p-{name}-L", values=values),
        right=Record(record_id=f"p-{name}-R", values=values),
    )


class TestBreakerConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"failure_threshold": 0},
            {"window_seconds": 0.0},
            {"error_rate_threshold": 0.0},
            {"error_rate_threshold": 1.1},
            {"min_window_requests": 0},
            {"cooldown_seconds": -1.0},
            {"half_open_probes": 0},
            {"success_threshold": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            BreakerConfig(**overrides)

    def test_dict_roundtrip(self):
        config = BreakerConfig(failure_threshold=3, cooldown_seconds=2.5)
        assert BreakerConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown breaker config fields"):
            BreakerConfig.from_dict({"failure_thresholds": 3})

    def test_with_overrides(self):
        config = BreakerConfig().with_overrides(failure_threshold=2)
        assert config.failure_threshold == 2
        assert config.cooldown_seconds == BreakerConfig().cooldown_seconds


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides) -> CircuitBreaker:
        defaults = dict(failure_threshold=3, cooldown_seconds=10.0)
        defaults.update(overrides)
        return CircuitBreaker(BreakerConfig(**defaults), clock=clock, name="t")

    def test_trips_on_consecutive_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.acquire()
        assert excinfo.value.retry_after == pytest.approx(10.0)
        assert excinfo.value.retryable is False
        assert breaker.fast_failures == 1
        clock.advance(4.0)
        assert breaker.retry_after == pytest.approx(6.0)

    def test_success_resets_consecutive_failures(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN

    def test_trips_on_error_rate_over_window(self):
        clock = FakeClock()
        breaker = self._breaker(
            clock,
            failure_threshold=100,  # out of reach: only the rate can trip
            min_window_requests=10,
            error_rate_threshold=0.5,
            window_seconds=30.0,
        )
        for _ in range(5):
            breaker.record_success()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # 4/9 < 0.5
        breaker.record_failure()  # 5/10 >= 0.5
        assert breaker.state == STATE_OPEN

    def test_window_prunes_stale_outcomes(self):
        clock = FakeClock()
        breaker = self._breaker(
            clock,
            failure_threshold=100,
            min_window_requests=4,
            error_rate_threshold=0.5,
            window_seconds=30.0,
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)  # the three failures age out of the window
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # 1 windowed outcome < min 4

    def test_cooldown_half_open_probe_and_close(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN
        breaker.acquire()  # the single probe slot
        with pytest.raises(CircuitOpenError, match="probe slots taken"):
            breaker.acquire()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.retry_after == 0.0
        assert breaker.open_seconds_total() == pytest.approx(5.0)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.acquire()
        breaker.record_failure()  # the probe failed
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        assert breaker.retry_after == pytest.approx(5.0)  # full cooldown again

    def test_success_threshold_requires_multiple_probes(self):
        clock = FakeClock()
        breaker = self._breaker(
            clock,
            failure_threshold=1,
            cooldown_seconds=5.0,
            half_open_probes=2,
            success_threshold=2,
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN  # one success is not enough
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_state_code_and_stats(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
        assert breaker.state_code() == 0
        breaker.record_failure()
        assert breaker.state_code() == 1
        clock.advance(5.0)
        assert breaker.state_code() == 2
        stats = breaker.stats()
        assert stats["name"] == "t"
        assert stats["state"] == STATE_HALF_OPEN
        assert stats["trips"] == 1
        assert stats["open_seconds_total"] == pytest.approx(5.0)
        json.dumps(stats)  # must be JSON-serializable for /stats


class TestDeadlineBudget:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="budget_seconds"):
            DeadlineBudget(0.0)

    def test_elapsed_remaining_and_check(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        clock.advance(3.0)
        assert budget.elapsed() == pytest.approx(3.0)
        assert budget.remaining() == pytest.approx(7.0)
        assert not budget.expired
        assert budget.allows(6.9)
        assert not budget.allows(7.0)  # would land exactly on the deadline
        budget.check("unit test")  # within budget: no raise
        clock.advance(7.0)
        assert budget.expired
        assert budget.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.check("unit test")
        assert excinfo.value.budget_seconds == pytest.approx(10.0)
        assert excinfo.value.elapsed_seconds == pytest.approx(10.0)
        assert excinfo.value.retryable is False

    def test_deadline_scope_installs_and_restores(self):
        assert current_deadline() is None
        budget = DeadlineBudget(5.0, clock=FakeClock())
        with deadline_scope(budget):
            assert current_deadline() is budget
            with deadline_scope(None):  # explicit clearing for reused contexts
                assert current_deadline() is None
            assert current_deadline() is budget
        assert current_deadline() is None


class TestTransportBreakerIntegration:
    def _transport(self, script, clock, breaker=None, max_attempts=6):
        return RetryingTransport(
            ScriptedTransport(script),
            policy=RetryPolicy(
                max_attempts=max_attempts,
                base_delay=1.0,
                multiplier=2.0,
                max_delay=60.0,
                jitter=0.0,
            ),
            clock=clock,
            breaker=breaker,
        )

    def test_breaker_trips_mid_ladder_and_fast_fails_next_send(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=3, cooldown_seconds=60.0), clock=clock
        )
        transport = self._transport([503, 503, 503], clock, breaker=breaker)
        with pytest.raises(CircuitOpenError):
            transport.send(REQUEST)
        # The third failure tripped the breaker; the fourth attempt was
        # refused before touching the backend.
        assert transport.inner.calls == 3
        assert breaker.state == STATE_OPEN
        sleeps_before = list(clock.sleeps)
        with pytest.raises(CircuitOpenError):
            transport.send(REQUEST)
        assert transport.inner.calls == 3  # fast-fail: no backend traffic
        assert clock.sleeps == sleeps_before  # and no backoff sleeps
        assert breaker.fast_failures == 2
        assert transport.stats()["breaker"]["state"] == STATE_OPEN

    def test_probe_recovers_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=3, cooldown_seconds=60.0), clock=clock
        )
        transport = self._transport([503, 503, 503, {"ok": True}], clock, breaker=breaker)
        with pytest.raises(CircuitOpenError):
            transport.send(REQUEST)
        clock.advance(60.0)
        response = transport.send(REQUEST)  # the half-open probe
        assert response.payload == {"ok": True}
        assert breaker.state == STATE_CLOSED

    def test_terminal_error_counts_as_backend_alive(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=2, cooldown_seconds=60.0), clock=clock
        )
        transport = self._transport([503, 400], clock, breaker=breaker)
        # One retryable failure, then a terminal 400: the backend answered,
        # so the breaker must stay closed (consecutive count reset).
        with pytest.raises(TerminalTransportError):
            transport.send(REQUEST)
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()  # one more retryable failure alone...
        assert breaker.state == STATE_CLOSED  # ...does not trip threshold 2

    def test_backoff_refused_when_it_would_overshoot_deadline(self):
        clock = FakeClock()
        transport = self._transport([503, 503, 503], clock)
        with deadline_scope(DeadlineBudget(2.5, clock=clock)):
            with pytest.raises(DeadlineExceeded) as excinfo:
                transport.send(REQUEST)
        # Attempt 1 fails, sleeps 1s; attempt 2 fails, the 2s backoff would
        # overshoot the 2.5s budget — refused with the cause chain intact.
        assert transport.inner.calls == 2
        assert clock.sleeps == [1.0]
        assert isinstance(excinfo.value.__cause__, RetryableTransportError)

    def test_expired_deadline_refuses_the_attempt_itself(self):
        clock = FakeClock()
        transport = self._transport([503], clock)
        budget = DeadlineBudget(1.0, clock=clock)
        clock.advance(5.0)
        with deadline_scope(budget):
            with pytest.raises(DeadlineExceeded):
                transport.send(REQUEST)
        assert transport.inner.calls == 0  # no attempt was started


@pytest.fixture()
def degraded_service(beer_dataset):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, cooldown_seconds=60.0),
        clock=clock,
        name="test-backend",
    )
    config = ServiceConfig(
        batcher=BatcherConfig(seed=1), max_batch_size=8, max_wait_seconds=0.02
    )
    service = ResolutionService.from_dataset(beer_dataset, config, breaker=breaker)
    yield service, breaker, clock
    service.stop()


class TestServiceDegradedMode:
    def test_cache_hits_serve_while_new_work_is_refused(
        self, degraded_service, beer_dataset
    ):
        service, breaker, clock = degraded_service
        service.start()
        pair = beer_dataset.splits.test[0].without_label()
        [resolution] = service.resolve_many([pair])  # populate the cache
        breaker.record_failure()  # trip: backend is now gated
        assert service.running and not service.ready

        hit = service.submit(pair)  # cached: served instantly, no LLM
        assert hit.result(timeout=5.0).label == resolution.label

        with pytest.raises(ServiceDegraded) as excinfo:
            service.submit(_pair("degraded-novel"))
        assert excinfo.value.retry_after == pytest.approx(60.0)
        stats = service.stats()
        assert stats.rejected_degraded == 1
        assert stats.breaker["state"] == STATE_OPEN

    def test_bulk_path_refuses_uncached_but_serves_cached(
        self, degraded_service, beer_dataset
    ):
        service, breaker, clock = degraded_service
        service.start()
        pair = beer_dataset.splits.test[1].without_label()
        service.resolve_many([pair])
        breaker.record_failure()
        assert service.resolve_bulk([pair])  # cached-only bulk still serves
        with pytest.raises(ServiceDegraded):
            service.resolve_bulk([pair, _pair("bulk-novel")])

    def test_inflight_joins_still_serve_and_half_open_recovers(
        self, degraded_service
    ):
        service, breaker, clock = degraded_service
        pair = _pair("joinable")
        first = service.submit(pair)  # queued (consumer not started yet)
        breaker.record_failure()
        joined = service.submit(pair)  # identical pair: joins, not refused
        assert service.stats().inflight_joined == 1
        with pytest.raises(ServiceDegraded):
            service.submit(_pair("other-novel"))
        # Recovery: cooldown elapses, the breaker goes half-open, and
        # half-open admits work — probe traffic is how the service recovers.
        clock.advance(60.0)
        assert breaker.state == STATE_HALF_OPEN
        service.start()
        assert service.ready  # half-open + running consumer = ready
        assert first.result(timeout=10.0).label == joined.result(timeout=10.0).label


class TestResilienceHTTP:
    @pytest.fixture()
    def degraded_server(self, degraded_service):
        service, breaker, clock = degraded_service
        service.start()
        server = ServiceHTTPServer(service, port=0).serve_in_background()
        yield server, breaker, clock
        server.shutdown()
        server.server_close()

    @staticmethod
    def _get(server, path):
        try:
            with urllib.request.urlopen(server.address + path, timeout=10) as response:
                return response.status, json.loads(response.read()), response.headers
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), error.headers

    def test_healthz_stays_live_while_readyz_drains(self, degraded_server):
        server, breaker, clock = degraded_server
        status, payload, _ = self._get(server, "/readyz")
        assert status == 200 and payload["ready"] is True
        breaker.record_failure()
        # Liveness: still 200 — the process is healthy, only its backend is
        # gated; restarting the replica would not help.
        status, payload, _ = self._get(server, "/healthz")
        assert status == 200
        assert payload["live"] is True and payload["ready"] is False
        # Readiness: 503 with a Retry-After hint for the load balancer.
        status, payload, headers = self._get(server, "/readyz")
        assert status == 503
        assert payload["breaker"]["state"] == STATE_OPEN
        assert int(headers["Retry-After"]) >= 1
        # Recovery flips readiness back without a restart.
        clock.advance(60.0)
        status, payload, _ = self._get(server, "/readyz")
        assert status == 200

    def test_resolve_returns_503_with_retry_after_while_degraded(
        self, degraded_server
    ):
        server, breaker, clock = degraded_server
        breaker.record_failure()
        body = json.dumps(
            {"pairs": [{"left": {"name": "deg-http"}, "right": {"name": "deg-http"}}]}
        ).encode("utf-8")
        request = urllib.request.Request(
            server.address + "/resolve",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        assert "breaker" in json.loads(excinfo.value.read())["error"]


class _BreakerOpenLLM(LLMClient):
    """Raises :class:`CircuitOpenError` instead of making its k-th call.

    The transport-level analogue of :class:`repro.engine.faults.CrashingLLM`:
    the faulted attempt never reaches the backend, the ordinal keeps counting
    past the fault, so a resume can share the wrapper with the paused run and
    the zero-repeated-calls property is assertable from ``attempts``.
    """

    def __init__(self, inner: LLMClient, fail_at_call: int) -> None:
        super().__init__(model_name=inner.model_name, tokenizer=inner.tokenizer)
        self.inner = inner
        self.fail_at_call = fail_at_call
        self._lock = threading.Lock()
        self.attempts = 0
        self.faults = 0

    def _generate(self, prompt_text: str) -> str:
        with self._lock:
            self.attempts += 1
            if self.attempts == self.fail_at_call:
                self.faults += 1
                raise CircuitOpenError(
                    "circuit 'backend' is open (backend gated)", retry_after=5.0
                )
        return self.inner._generate(prompt_text)


class TestEnginePauseResume:
    def test_open_breaker_pauses_then_resumes_with_zero_repeated_calls(
        self, beer_dataset, checkpoint_dir
    ):
        config = BatcherConfig(seed=3, max_questions=32)
        unsharded = BatchER(config).run(beer_dataset)
        llm = _BreakerOpenLLM(
            create_llm(config.model, seed=config.seed, temperature=config.temperature),
            fail_at_call=3,
        )
        engine = RunEngine(
            config=config, llm=llm, num_shards=2, checkpoint_dir=checkpoint_dir
        )
        with pytest.raises(CircuitOpenError):
            engine.run(beer_dataset)
        report = engine.last_report
        assert report is not None
        assert report.paused is True
        assert report.checkpointed is True
        assert report.to_dict()["paused"] is True

        resumed = engine.run(beer_dataset)
        assert resumed == unsharded  # byte-identical to the never-paused run
        assert engine.last_report.paused is False
        # Every call before the pause was checkpointed; the resume repeated
        # none of them (the faulted attempt itself never reached the LLM).
        assert llm.attempts - llm.faults == unsharded.cost.num_llm_calls

    def test_other_failures_do_not_mark_the_report_paused(
        self, beer_dataset, checkpoint_dir, make_crashing_llm
    ):
        config = BatcherConfig(seed=3, max_questions=32)
        engine = RunEngine(
            config=config,
            llm=make_crashing_llm(config, fail_at_call=2),
            num_shards=2,
            checkpoint_dir=checkpoint_dir,
        )
        with pytest.raises(Exception, match="injected LLM fault"):
            engine.run(beer_dataset)
        assert engine.last_report is not None
        assert engine.last_report.paused is False
