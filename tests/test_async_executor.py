"""AsyncExecutor tests: golden equivalence and the retry/usage property.

The asyncio dispatch lane must be invisible in results: a framework run
through :class:`AsyncExecutor` is byte-identical to the serial and
thread-pool paths, at every shard count — and a flaky transport under
concurrent dispatch may change *when* requests are retried but never what
they return or how much usage is recorded.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.engines import FakeClock, FlakyTransport, SimulatedBackendTransport, create_engine
from repro.llm.base import LLMResponse
from repro.llm.executors import (
    AsyncExecutor,
    ConcurrentExecutor,
    SerialExecutor,
    create_executor,
)
from repro.llm.simulated import SimulatedLLM

CONFIG = BatcherConfig(seed=3, max_questions=64)

PROMPTS = [f"Q{i}: do entity A and entity B match? Answer Yes or No." for i in range(12)]


class TestMapContract:
    def test_results_preserve_input_order(self):
        executor = AsyncExecutor(max_in_flight=8)
        assert executor.map(lambda x: x * 2, range(50)) == [x * 2 for x in range(50)]

    def test_empty_input(self):
        assert AsyncExecutor().map(lambda x: x, []) == []

    def test_async_callables_run_natively(self):
        async def double(x):
            await asyncio.sleep(0)
            return x * 2

        assert AsyncExecutor(max_in_flight=4).map(double, range(10)) == [
            x * 2 for x in range(10)
        ]

    def test_map_settled_settles_failures(self):
        def explode(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        settled = AsyncExecutor(max_in_flight=4).map_settled(explode, range(5))
        assert [result for result, _ in settled[:3]] == [0, 1, 2]
        assert settled[3][0] is None and isinstance(settled[3][1], RuntimeError)
        assert settled[4] == (4, None)

    def test_refuses_nested_event_loop(self):
        async def call_inside_loop():
            AsyncExecutor().map(lambda x: x, [1])

        with pytest.raises(RuntimeError, match="running event loop"):
            asyncio.run(call_inside_loop())

    def test_validates_max_in_flight(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AsyncExecutor(max_in_flight=0)

    def test_create_executor_kinds(self):
        assert isinstance(create_executor(1), SerialExecutor)
        assert isinstance(create_executor(4), ConcurrentExecutor)
        assert isinstance(create_executor(4, kind="async"), AsyncExecutor)
        assert isinstance(create_executor(1, kind="concurrent"), ConcurrentExecutor)
        with pytest.raises(ValueError, match="unknown executor kind"):
            create_executor(2, kind="fibers")


class TestCompletionParity:
    def test_complete_many_matches_serial(self):
        serial_llm = create_engine("simulated", model="gpt-3.5-03", seed=5)
        async_llm = create_engine("simulated", model="gpt-3.5-03", seed=5)
        expected = serial_llm.complete_many(PROMPTS, executor=SerialExecutor())
        actual = async_llm.complete_many(PROMPTS, executor=AsyncExecutor(max_in_flight=6))
        assert actual == expected
        assert async_llm.usage.num_calls == serial_llm.usage.num_calls == len(PROMPTS)
        assert async_llm.usage.total_tokens == serial_llm.usage.total_tokens

    def test_acomplete_matches_complete(self):
        engine = create_engine("simulated", model="gpt-4", seed=2)
        reference = create_engine("simulated", model="gpt-4", seed=2)
        response = asyncio.run(engine.acomplete(PROMPTS[0]))
        assert isinstance(response, LLMResponse)
        assert response == reference.complete(PROMPTS[0])


class TestGoldenEquivalence:
    """engine=simulated through AsyncExecutor == Serial == Concurrent."""

    @pytest.fixture(scope="class")
    def beer_serial(self, beer_dataset):
        return BatchER(CONFIG, executor=SerialExecutor()).run(beer_dataset)

    @pytest.fixture(scope="class")
    def fz_serial(self, fz_dataset):
        return BatchER(CONFIG, executor=SerialExecutor()).run(fz_dataset)

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_beer_async_equals_serial(self, beer_dataset, beer_serial, shards):
        result = BatchER(CONFIG, executor=AsyncExecutor(max_in_flight=8)).run(
            beer_dataset, shards=shards
        )
        assert result == beer_serial
        assert repr(result) == repr(beer_serial)

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_fz_async_equals_serial(self, fz_dataset, fz_serial, shards):
        result = BatchER(CONFIG, executor=AsyncExecutor(max_in_flight=8)).run(
            fz_dataset, shards=shards
        )
        assert result == fz_serial
        assert repr(result) == repr(fz_serial)

    def test_beer_async_equals_concurrent(self, beer_dataset, beer_serial):
        result = BatchER(CONFIG, executor=ConcurrentExecutor(max_workers=4)).run(
            beer_dataset
        )
        assert result == beer_serial


class TestRetriesNeverDoubleCountUsage:
    """Property: faults change retry counters, never results or usage."""

    def run_engine(self, fail_at, executor):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        transport = FlakyTransport(SimulatedBackendTransport(sim), fail_at=fail_at)
        engine = create_engine(
            "openai",
            transport=transport,
            clock=FakeClock(),
            api_key="sk-test",
            model="gpt-3.5-03",
            seed=0,
        )
        responses = engine.complete_many(PROMPTS, executor=executor)
        return engine, responses

    @pytest.fixture(scope="class")
    def clean_run(self):
        engine, responses = self.run_engine(frozenset(), SerialExecutor())
        return engine.usage, responses

    @settings(max_examples=25, deadline=None)
    @given(
        fail_at=st.sets(st.integers(min_value=1, max_value=14), max_size=5).filter(
            # Keep fault runs shorter than the retry budget so every prompt
            # eventually succeeds (max_attempts=5 tolerates 4-in-a-row).
            lambda s: all(not {o, o + 1, o + 2, o + 3} <= s for o in s)
        )
    )
    def test_serial_dispatch(self, clean_run, fail_at):
        clean_usage, clean_responses = clean_run
        engine, responses = self.run_engine(fail_at, SerialExecutor())
        assert responses == clean_responses
        assert engine.usage.num_calls == clean_usage.num_calls == len(PROMPTS)
        assert engine.usage.prompt_tokens == clean_usage.prompt_tokens
        assert engine.usage.completion_tokens == clean_usage.completion_tokens

    @settings(max_examples=10, deadline=None)
    @given(fail_at=st.sets(st.integers(min_value=1, max_value=14), max_size=2))
    def test_async_dispatch(self, clean_run, fail_at):
        # Under concurrent dispatch the fault hits a nondeterministic request,
        # but responses are a pure function of the prompt — so results and
        # usage still match the clean serial run exactly.
        clean_usage, clean_responses = clean_run
        engine, responses = self.run_engine(fail_at, AsyncExecutor(max_in_flight=4))
        assert responses == clean_responses
        assert engine.usage.num_calls == clean_usage.num_calls
        assert engine.usage.total_tokens == clean_usage.total_tokens
        # Every injected failure was absorbed by a retry (an ordinal past the
        # last send never fires, so compare against what actually hit).
        assert engine.transport.stats()["retries"] == engine.transport.inner.injected_failures
