"""Tests for the experiment runners (Tables II-VII, Figures 6-7, ablations).

These use tiny settings (two small datasets, few questions) so they are fast;
they check row shapes and the structural invariants of each artifact rather
than absolute numbers.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    run_batch_size_ablation,
    run_dataset_statistics,
    run_exp1_standard_vs_batch,
    run_exp2_design_space,
    run_exp3_plm_comparison,
    run_exp4_manual_prompt,
    run_exp5_llms,
    run_exp6_feature_extractors,
    run_figure6_precision_recall,
    run_threshold_ablation,
)
from repro.experiments.exp2_design_space import best_design_choice
from repro.experiments.exp3_plm_comparison import crossover_summary


@pytest.fixture(scope="module")
def tiny_settings():
    return ExperimentSettings(
        datasets=("beer", "fz"),
        scale=0.4,
        max_questions=32,
        seeds=(1,),
        data_seed=7,
    )


class TestSettings:
    def test_defaults_cover_all_datasets(self):
        settings = ExperimentSettings()
        assert len(settings.datasets) == 8

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXP_SCALE", "0.2")
        monkeypatch.setenv("REPRO_EXP_MAX_QUESTIONS", "none")
        monkeypatch.setenv("REPRO_EXP_DATASETS", "beer, fz")
        settings = ExperimentSettings.from_env()
        assert settings.scale == 0.2
        assert settings.max_questions is None
        assert settings.datasets == ("beer", "fz")

    def test_load_respects_scale(self, tiny_settings):
        dataset = tiny_settings.load("beer")
        assert len(dataset.candidate_pairs) < 450


class TestTableII:
    def test_rows_shape(self, tiny_settings):
        rows = run_dataset_statistics(tiny_settings)
        assert len(rows) == 2
        assert {row["Domain"] for row in rows} == {"Beer", "Restaurant"}


class TestExp1:
    def test_table3_rows(self, tiny_settings):
        rows = run_exp1_standard_vs_batch(tiny_settings)
        assert len(rows) == 2
        for row in rows:
            assert row["Standard API ($)"] > row["Batch API ($)"]
            assert row["Cost saving (x)"] > 1.0
            assert "±" in row["Standard F1"]

    def test_figure6_rows(self, tiny_settings):
        rows = run_figure6_precision_recall(tiny_settings, datasets=("beer",))
        assert len(rows) == 2
        assert {row["Method"] for row in rows} == {"Standard", "Batch"}
        for row in rows:
            assert 0.0 <= row["Precision"] <= 100.0
            assert 0.0 <= row["Recall"] <= 100.0


class TestExp2:
    def test_table4_rows_and_costs(self, tiny_settings):
        rows = run_exp2_design_space(tiny_settings)
        assert len(rows) == 2 * 12
        combos = {(row["Batching"], row["Selection"]) for row in rows}
        assert len(combos) == 12
        for dataset in ("Beer", "FZ"):
            fixed_cost = min(
                row["Label ($)"]
                for row in rows
                if row["Dataset"] == dataset and row["Selection"] == "Fix"
            )
            topk_cost = max(
                row["Label ($)"]
                for row in rows
                if row["Dataset"] == dataset and row["Selection"] == "Topk-question"
            )
            assert fixed_cost <= topk_cost

    def test_best_design_choice_summary(self, tiny_settings):
        rows = run_exp2_design_space(tiny_settings)
        summary = best_design_choice(rows)
        assert summary["Datasets won"] >= 1
        assert summary["Batching"] in {"Random", "Similarity", "Diversity"}


class TestExp3:
    def test_figure7_rows(self, tiny_settings):
        rows = run_exp3_plm_comparison(tiny_settings, train_fractions=(0.1, 0.5, 1.0))
        methods = {row["Method"] for row in rows}
        assert methods == {"BatchER", "Ditto", "JointBert", "RobEM"}
        # Each baseline has one row per training fraction per dataset.
        ditto_rows = [row for row in rows if row["Method"] == "Ditto"]
        assert len(ditto_rows) == 2 * 3
        summary = crossover_summary(rows)
        assert len(summary) == 2 * 3


class TestExp4:
    def test_table5_rows(self, tiny_settings):
        rows = run_exp4_manual_prompt(tiny_settings, datasets=("beer", "fz"))
        assert len(rows) == 2
        for row in rows:
            assert row["Manual API ($)"] > row["Batch API ($)"]

    def test_ab_excluded_by_default(self):
        settings = ExperimentSettings(datasets=("ab", "beer"), scale=0.4, max_questions=16, seeds=(1,))
        rows = run_exp4_manual_prompt(settings)
        assert {row["Dataset"] for row in rows} == {"Beer"}


class TestExp5:
    def test_table6_rows(self, tiny_settings):
        rows = run_exp5_llms(tiny_settings, models=("gpt-3.5-03", "gpt-4"))
        assert len(rows) == 2
        for row in rows:
            assert row["gpt-4 API ($)"] > row["gpt-3.5-03 API ($)"]

    def test_llama_column_optional(self, tiny_settings):
        rows = run_exp5_llms(tiny_settings, models=("gpt-3.5-03",), include_llama=True)
        assert "llama2-70b unanswered" in rows[0]


class TestExp6:
    def test_table7_rows(self, tiny_settings):
        rows = run_exp6_feature_extractors(tiny_settings)
        assert len(rows) == 2
        for row in rows:
            for column in ("BatchER-LR", "BatchER-JAC", "BatchER-SEM"):
                assert 0.0 <= row[column] <= 100.0


class TestAblations:
    def test_threshold_ablation(self, tiny_settings):
        rows = run_threshold_ablation(tiny_settings, percentiles=(4.0, 30.0), dataset_name="beer")
        assert len(rows) == 2
        tight, loose = rows
        assert tight["Labeled demos"] >= loose["Labeled demos"]

    def test_batch_size_ablation(self, tiny_settings):
        rows = run_batch_size_ablation(tiny_settings, batch_sizes=(2, 8), dataset_name="beer")
        assert len(rows) == 2
        small, large = rows
        assert small["LLM calls"] > large["LLM calls"]
        assert small["API ($)"] > large["API ($)"]


class TestEffectiveScale:
    def test_small_datasets_floored_to_min_pairs(self):
        settings = ExperimentSettings(scale=0.05, min_pairs=400)
        assert settings.effective_scale("beer") > 0.8   # 450-pair dataset kept near full size
        assert settings.effective_scale("ds") == 0.05   # 28k-pair dataset scaled down

    def test_floor_never_exceeds_full_size(self):
        settings = ExperimentSettings(scale=0.05, min_pairs=10_000)
        assert settings.effective_scale("beer") == 1.0
