"""Benchmark: staged pipeline with serial vs. concurrent LLM dispatch.

The batch prompts of one run are independent, so the inference stage can fan
them out on a thread pool.  This benchmark times the full pipeline under both
execution backends and asserts they produce identical predictions — the
determinism guarantee that makes the concurrency knob safe to turn in
production.
"""

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.llm.executors import ConcurrentExecutor, SerialExecutor
from repro.pipeline import Pipeline, PipelineContext


def _config(bench_settings) -> BatcherConfig:
    return BatcherConfig(
        batching="diverse",
        selection="covering",
        seed=1,
        batch_size=bench_settings.batch_size,
        num_demonstrations=bench_settings.num_demonstrations,
        max_questions=bench_settings.max_questions,
    )


def test_pipeline_serial_dispatch(benchmark, bench_settings):
    dataset = bench_settings.load("beer")
    config = _config(bench_settings)
    result = benchmark(BatchER(config, executor=SerialExecutor()).run, dataset)
    assert result.num_batches > 1


def test_pipeline_concurrent_dispatch(benchmark, bench_settings):
    dataset = bench_settings.load("beer")
    config = _config(bench_settings)
    serial = BatchER(config, executor=SerialExecutor()).run(dataset)
    result = benchmark(
        BatchER(config, executor=ConcurrentExecutor(max_workers=8)).run, dataset
    )
    assert result.predictions == serial.predictions
    assert result.metrics == serial.metrics
    assert result.cost == serial.cost


def test_pipeline_stage_overhead(benchmark, bench_settings):
    """Time the staged runner itself (context build + stage dispatch + telemetry)."""
    dataset = bench_settings.load("beer")
    config = _config(bench_settings)
    pipeline = Pipeline.default()

    def run_staged():
        context = PipelineContext.from_dataset(dataset, config)
        return pipeline.run(context)

    context = benchmark(run_staged)
    assert len(context.timings) == len(pipeline.stage_names)
