"""Benchmark: ablation over the batch size."""

from conftest import print_rows, run_once

from repro.experiments.ablation import run_batch_size_ablation


def test_ablation_batch_size(benchmark, bench_settings):
    rows = run_once(benchmark, run_batch_size_ablation, bench_settings)
    assert len(rows) >= 3

    # Shape check: larger batches mean fewer LLM calls and a lower API bill.
    ordered = sorted(rows, key=lambda row: row["Batch size"])
    assert ordered[0]["LLM calls"] > ordered[-1]["LLM calls"]
    assert ordered[0]["API ($)"] >= ordered[-1]["API ($)"]

    print_rows("Ablation — batch size (WA)", rows)
