"""Benchmark: dense vs. exact-sparse vs. approximate-LSH batch planning.

*Batch planning* is everything between featurization and prompting: DBSCAN
clustering of the question feature vectors and covering-based demonstration
selection.  Three arms plan the same synthetic Gaussian-blob workload at
identical, pre-resolved radii:

- **dense** (n <= 20 000): the pre-refactor implementation — the full
  ``(n, n)`` pairwise matrix plus per-point Python loops.
- **exact sparse** (n <= 100 000): blocked CSR epsilon-graphs
  (:mod:`repro.clustering.neighbors`) with a lazy-greedy set cover.
- **LSH** (every size, including ``--n 1000000``): the approximate
  MinHash-LSH epsilon-graph — candidates from a banded MinHash index over
  quantized grid cells, verified with exact distances.

The benchmark is an equivalence oracle as much as a stopwatch.  Where two
exact arms overlap they must produce *identical* labels and selections; the
LSH arm's graph is checked (at oracle sizes, where the exact graph is
affordable) to be a strict subgraph of the exact graph with edge recall of at
least ``RECALL_FLOOR``, and its covering selections must match the exact
arm's — covering radii and cross joins stay exact in every regime.  Peak
planning memory is measured with ``tracemalloc`` (numpy buffers included) and
the LSH arm is asserted to stay under ``--max-peak-gb`` at every size.

The run emits ``BENCH_planning.json`` in the repository root with the
headline numbers.  Unlike other ``BENCH_*`` artifacts the planning report is
*tracked*: the committed file records the machine-independent oracles
(recall, subgraph, plan equality) next to the indicative timings.

Standalone (the CI smoke invocation uses ``--small --min-speedup 0``)::

    PYTHONPATH=src python benchmarks/bench_batch_planning.py
    PYTHONPATH=src python benchmarks/bench_batch_planning.py --n 1000000
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.dbscan import DBSCAN, NOISE_LABEL
from repro.clustering.distance import pairwise_distances
from repro.clustering.neighbors import (
    NeighborPlanner,
    build_lsh_neighbor_graph,
    build_neighbor_graph,
    sample_percentile_radius,
)
from repro.data.schema import EntityPair, MatchLabel, Record
from repro.selection.covering import CoveringSelector
from repro.selection.set_cover import greedy_set_cover_eager
from repro.text.tokenizer import ApproxTokenizer

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planning.json"

#: Default question-set sizes.  Every size runs the LSH arm; the exact arms
#: join in below their limits so the plan-quality oracles stay exercised.
DEFAULT_SIZES = (2000, 8000, 20000, 100_000)

#: Sizes of the CI smoke run; 5000 exercises the LSH recall oracle.
SMALL_SIZES = (300, 600, 5000)

#: Largest n the dense (quadratic-matrix) baseline arm runs at.
DENSE_ARM_LIMIT = 20_000

#: Largest n the exact sparse arm (and the LSH covering-equality and
#: cluster-speedup comparisons against it) runs at.
EXACT_ARM_LIMIT = 100_000

#: Largest n at which the exact epsilon-graph is rebuilt (untimed) to score
#: the LSH graph: subgraph property + edge recall.
RECALL_ORACLE_LIMIT = 20_000

#: Minimum acceptable LSH edge recall vs. the exact graph at oracle sizes.
RECALL_FLOOR = 0.95

#: Feature dimensionality of the synthetic workload.
DIMENSION = 8

#: Points per Gaussian blob (controls neighbourhood density).
BLOB_SIZE = 40

#: Ceiling percentile used to resolve the shared eps / covering threshold t.
#: Low on purpose: realistic planning radii keep neighbourhoods small
#: relative to n.
RADIUS_PERCENTILE = 0.5

#: The percentile is scaled down with n so the expected neighbourhood degree
#: stays ~constant instead of growing linearly — a fixed percentile at
#: n = 1M would mean ~5000 neighbours per point.  The scaling also keeps eps
#: in the within-blob distance regime: the workload's within-blob pair
#: fraction is BLOB_SIZE / n, and a fixed percentile crosses above it as n
#: grows, snapping eps from ~1.5 to ~6 (whole-blob neighbourhoods, mean
#: degree ~95) between n = 8000 and n = 20000.
TARGET_DEGREE = 32


def radius_percentile_for(n: int) -> float:
    """Resolution percentile keeping expected degree ~TARGET_DEGREE at scale."""
    return min(RADIUS_PERCENTILE, 100.0 * TARGET_DEGREE / n)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _traced(fn):
    """Run ``fn`` and return (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    try:
        result, seconds = _timed(fn)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, seconds, peak


def make_features(n: int, m: int, seed: int = 11):
    """Blobby question/pool feature matrices (no pair objects)."""
    rng = np.random.default_rng(seed)
    num_blobs = max(1, n // BLOB_SIZE)
    centers = rng.normal(scale=4.0, size=(num_blobs, DIMENSION))
    assignments = rng.integers(0, num_blobs, size=n)
    question_features = centers[assignments] + rng.normal(scale=0.25, size=(n, DIMENSION))
    pool_assignments = rng.integers(0, num_blobs, size=m)
    pool_features = centers[pool_assignments] + rng.normal(scale=0.25, size=(m, DIMENSION))
    return question_features, pool_features


def make_pairs(n: int, m: int, seed: int = 11):
    """Synthetic question/pool EntityPairs for the covering arms.

    Only built at sizes where a covering arm runs — a million EntityPair
    objects would dominate the workload setup without being consumed.
    """
    rng = np.random.default_rng(seed + 1)

    def make_pair(tag: str, index: int, label: MatchLabel | None) -> EntityPair:
        values = {"name": f"{tag} item {index}", "price": str(index % 997)}
        return EntityPair(
            pair_id=f"{tag}-{index}",
            left=Record(record_id=f"{tag}-l{index}", values=values),
            right=Record(record_id=f"{tag}-r{index}", values=values),
            label=label,
        )

    questions = [make_pair("q", i, None) for i in range(n)]
    pool = [make_pair("d", i, MatchLabel(int(rng.integers(0, 2)))) for i in range(m)]
    return questions, pool


def make_batches(questions, batch_size: int = 8, seed: int = 5) -> list[QuestionBatch]:
    """Chunk a shuffled question order into batches (shared by all arms)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(questions))
    batches = []
    for batch_id, start in enumerate(range(0, len(order), batch_size)):
        indices = tuple(int(i) for i in order[start : start + batch_size])
        batches.append(
            QuestionBatch(
                batch_id=batch_id,
                indices=indices,
                pairs=tuple(questions[i] for i in indices),
            )
        )
    return batches


# -- the dense baseline: the pre-refactor planning implementation -------------


def baseline_dbscan(features: np.ndarray, eps: float, min_samples: int = 2):
    """Pre-refactor DBSCAN: dense matrix, per-point neighbour lists, list BFS."""
    n = features.shape[0]
    distances = pairwise_distances(features)
    neighbour_lists = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core_mask = np.array(
        [len(neighbours) >= min_samples for neighbours in neighbour_lists]
    )
    labels = np.full(n, NOISE_LABEL, dtype=int)
    cluster_id = 0
    for point in range(n):
        if labels[point] != NOISE_LABEL or not core_mask[point]:
            continue
        labels[point] = cluster_id
        frontier = list(neighbour_lists[point])
        while frontier:
            neighbour = int(frontier.pop())
            if labels[neighbour] == NOISE_LABEL:
                labels[neighbour] = cluster_id
                if core_mask[neighbour]:
                    frontier.extend(
                        int(candidate)
                        for candidate in neighbour_lists[neighbour]
                        if labels[candidate] == NOISE_LABEL
                    )
        cluster_id += 1
    return labels


def baseline_covering(
    batches, question_features, pool, pool_features, threshold: float
):
    """Pre-refactor covering selection: dense (n, m) matrix, eager set cover."""
    from repro.clustering.distance import cross_distances
    from repro.data.serialization import serialize_pair

    tokenizer = ApproxTokenizer()
    distances = cross_distances(question_features, pool_features)
    num_questions, num_pool = distances.shape
    coverage = [
        frozenset(np.flatnonzero(distances[:, demo] < threshold).tolist())
        for demo in range(num_pool)
    ]
    generation = greedy_set_cover_eager(num_questions, coverage, weights=None)
    demonstration_set = list(generation.selected)
    for question_index in sorted(generation.uncovered_items):
        nearest = int(np.argmin(distances[question_index]))
        if nearest not in demonstration_set:
            demonstration_set.append(nearest)
    token_weights = {
        demo: max(1.0, float(tokenizer.count(serialize_pair(pool[demo]))))
        for demo in demonstration_set
    }
    per_batch = []
    for batch in batches:
        batch_questions = list(batch.indices)
        local_coverage = []
        for demo in demonstration_set:
            local_coverage.append(
                frozenset(
                    position
                    for position, question_index in enumerate(batch_questions)
                    if distances[question_index, demo] < threshold
                )
            )
        solution = greedy_set_cover_eager(
            len(batch_questions),
            local_coverage,
            weights=[token_weights[demo] for demo in demonstration_set],
        )
        chosen = [demonstration_set[position] for position in solution.selected]
        for position in sorted(solution.uncovered_items):
            question_index = batch_questions[position]
            nearest_demo = min(
                demonstration_set, key=lambda demo: distances[question_index, demo]
            )
            if nearest_demo not in chosen:
                chosen.append(nearest_demo)
        per_batch.append(tuple(dict.fromkeys(chosen)))
    return tuple(per_batch)


# -- the three arms ------------------------------------------------------------


def run_dense_arm(question_features, pool_features, pool, batches, eps, threshold):
    labels, cluster_seconds = _timed(lambda: baseline_dbscan(question_features, eps))
    selections, covering_seconds = _timed(
        lambda: baseline_covering(
            batches, question_features, pool, pool_features, threshold
        )
    )
    return {
        "labels": labels,
        "selections": selections,
        "cluster_seconds": cluster_seconds,
        "covering_seconds": covering_seconds,
    }


def run_sparse_arm(question_features, pool_features, pool, batches, eps, threshold):
    # approx_threshold=None pins this arm to the *exact* blocked join at every
    # size — without it, the planner's default would route n > 100k to LSH and
    # the arm would stop being an exact baseline.
    planner = NeighborPlanner(dense_threshold=0, approx_threshold=None)
    clusterer = DBSCAN(eps=eps, min_samples=2, planner=planner)
    fitted, cluster_seconds = _timed(lambda: clusterer.fit(question_features))
    selector = CoveringSelector(threshold=threshold, planner=planner)
    result, covering_seconds = _timed(
        lambda: selector.select(batches, question_features, pool, pool_features)
    )
    return {
        "labels": fitted.labels,
        "selections": tuple(batch.pool_indices for batch in result.per_batch),
        "cluster_seconds": cluster_seconds,
        "covering_seconds": covering_seconds,
    }


def run_lsh_arm(
    question_features, pool_features, pool, batches, eps, threshold, with_covering
):
    # approx_threshold=0 (with dense_threshold=0) forces every self-join
    # through the MinHash-LSH epsilon-graph; cross joins (covering) stay
    # exact by design, so selections remain comparable to the exact arm.
    planner = NeighborPlanner(dense_threshold=0, approx_threshold=0)
    clusterer = DBSCAN(eps=eps, min_samples=2, planner=planner)
    fitted, cluster_seconds = _timed(lambda: clusterer.fit(question_features))
    selections = None
    covering_seconds = None
    if with_covering:
        selector = CoveringSelector(threshold=threshold, planner=planner)
        result, covering_seconds = _timed(
            lambda: selector.select(batches, question_features, pool, pool_features)
        )
        selections = tuple(batch.pool_indices for batch in result.per_batch)
    stats = planner.stats()
    return {
        "labels": fitted.labels,
        "selections": selections,
        "cluster_seconds": cluster_seconds,
        "covering_seconds": covering_seconds,
        "lsh_candidates": stats.lsh_candidates,
        "lsh_edges": stats.lsh_edges,
    }


# -- the LSH graph-quality oracle ---------------------------------------------


def _edge_keys(graph) -> np.ndarray:
    """Directed edges of a CSR graph as sorted composite uint64 keys."""
    counts = np.diff(graph.indptr)
    rows = np.repeat(np.arange(graph.num_rows, dtype=np.uint64), counts)
    return rows * np.uint64(graph.num_cols) + graph.indices.astype(np.uint64)


def score_lsh_graph(features: np.ndarray, eps: float) -> dict[str, object]:
    """Rebuild both graphs untimed and score LSH against the exact oracle.

    The LSH builder verifies every candidate with exact distances, so a
    correct implementation yields a subgraph of the exact graph — recall
    (edge ratio, clamped at 1) is then the only quality degree of freedom.
    Edges whose distance ties ``eps`` exactly may round differently under
    the two exact formulas (see ``build_lsh_neighbor_graph``); such boundary
    ties count as agreements.
    """
    from repro.clustering.distance import elementwise_distances

    exact = build_neighbor_graph(features, eps, inclusive=True)
    approx, num_candidates = build_lsh_neighbor_graph(features, eps, inclusive=True)
    exact_keys = _edge_keys(exact)
    approx_keys = _edge_keys(approx)
    extra = np.setdiff1d(approx_keys, exact_keys)
    subgraph = True
    if extra.size:
        n = exact.num_cols
        rows = (extra // np.uint64(n)).astype(np.int64)
        cols = (extra % np.uint64(n)).astype(np.int64)
        distances = elementwise_distances(features[rows], features[cols])
        subgraph = bool(np.allclose(distances, eps, rtol=1e-9, atol=1e-12))
    recall = (
        min(1.0, float(len(approx_keys)) / float(len(exact_keys)))
        if len(exact_keys)
        else 1.0
    )
    return {
        "exact_edges": int(len(exact_keys)),
        "lsh_edges": int(len(approx_keys)),
        "lsh_candidates": int(num_candidates),
        "subgraph": subgraph,
        "recall": round(recall, 4),
    }


# -- the driver ----------------------------------------------------------------


def run_planning_bench(
    sizes,
    min_speedup: float,
    min_lsh_speedup: float,
    max_peak_gb: float,
    seed: int,
) -> dict[str, object]:
    results = []
    for n in sizes:
        m = max(50, min(2000, n // 10))
        covering_runs = n <= EXACT_ARM_LIMIT
        question_features, pool_features = make_features(n, m, seed)
        if covering_runs:
            questions, pool = make_pairs(n, m, seed)
            batches = make_batches(questions)
        else:
            pool, batches = None, None
        # All arms plan at identical radii, resolved once from a seeded
        # sample — radius resolution is part of the planner but not of this
        # stopwatch, which isolates the geometry consumers.  Above the dense
        # limit the percentile is scaled to hold expected degree ~constant.
        percentile = radius_percentile_for(n)
        eps = sample_percentile_radius(question_features, percentile)
        threshold = sample_percentile_radius(question_features, percentile * 0.8)

        entry: dict[str, object] = {
            "n": n,
            "m": m,
            "batches": len(batches) if batches is not None else 0,
            "radius_percentile": percentile,
            "eps": round(eps, 6),
        }

        dense = sparse = None
        if n <= DENSE_ARM_LIMIT:
            dense, dense_seconds, dense_peak = _traced(
                lambda: run_dense_arm(
                    question_features, pool_features, pool, batches, eps, threshold
                )
            )
            entry["dense_seconds"] = round(dense_seconds, 4)
            entry["dense_peak_bytes"] = dense_peak
            entry["dense_matrix_bytes"] = n * n * 8
        if n <= EXACT_ARM_LIMIT:
            sparse, sparse_seconds, sparse_peak = _traced(
                lambda: run_sparse_arm(
                    question_features, pool_features, pool, batches, eps, threshold
                )
            )
            entry["sparse_seconds"] = round(sparse_seconds, 4)
            entry["sparse_cluster_seconds"] = round(sparse["cluster_seconds"], 4)
            entry["sparse_peak_bytes"] = sparse_peak

        lsh, lsh_seconds, lsh_peak = _traced(
            lambda: run_lsh_arm(
                question_features,
                pool_features,
                pool,
                batches,
                eps,
                threshold,
                with_covering=covering_runs,
            )
        )
        entry["lsh_seconds"] = round(lsh_seconds, 4)
        entry["lsh_cluster_seconds"] = round(lsh["cluster_seconds"], 4)
        entry["lsh_peak_bytes"] = lsh_peak
        entry["lsh_candidates"] = lsh["lsh_candidates"]
        entry["lsh_edges"] = lsh["lsh_edges"]

        # -- plan-quality oracles (hard assertions, not just report fields) --
        if dense is not None and sparse is not None:
            if not np.array_equal(dense["labels"], sparse["labels"]):
                raise AssertionError(f"n={n}: sparse DBSCAN labels diverge from dense")
            if dense["selections"] != sparse["selections"]:
                raise AssertionError(
                    f"n={n}: sparse covering selections diverge from dense"
                )
            entry["dense_sparse_equal"] = True
            entry["speedup"] = (
                round(dense_seconds / sparse_seconds, 2) if sparse_seconds else None
            )
        if sparse is not None and lsh["selections"] is not None:
            # Covering radii and cross joins stay exact in every regime, so
            # the LSH arm's demonstration selections must match exactly.
            if lsh["selections"] != sparse["selections"]:
                raise AssertionError(
                    f"n={n}: LSH-arm covering selections diverge from exact sparse"
                )
            entry["lsh_selections_equal"] = True
        if sparse is not None:
            entry["lsh_cluster_speedup"] = (
                round(sparse["cluster_seconds"] / lsh["cluster_seconds"], 2)
                if lsh["cluster_seconds"]
                else None
            )
        if n <= RECALL_ORACLE_LIMIT:
            oracle = score_lsh_graph(question_features, eps)
            entry["lsh_oracle"] = oracle
            if not oracle["subgraph"]:
                raise AssertionError(
                    f"n={n}: LSH graph contains edges missing from the exact graph"
                )
            if oracle["recall"] < RECALL_FLOOR:
                raise AssertionError(
                    f"n={n}: LSH edge recall {oracle['recall']} below {RECALL_FLOOR}"
                )
        if max_peak_gb > 0 and lsh_peak > max_peak_gb * 1e9:
            raise AssertionError(
                f"n={n}: LSH arm peak {lsh_peak / 1e9:.2f} GB exceeds "
                f"the {max_peak_gb} GB budget"
            )

        results.append(entry)
        dense_text = (
            f"dense {entry['dense_seconds']:8.2f}s" if dense is not None else "dense      --"
        )
        sparse_text = (
            f"sparse {entry['sparse_seconds']:8.2f}s" if sparse is not None else "sparse      --"
        )
        print(
            f"n={n:>7} m={m:>5}  {dense_text}  {sparse_text}"
            f"  lsh {lsh_seconds:8.2f}s / {lsh_peak / 1e6:9.1f} MB"
            f"  recall {entry.get('lsh_oracle', {}).get('recall', '--')}",
            file=sys.stderr,
        )

    exact_entries = [e for e in results if "speedup" in e]
    lsh_entries = [e for e in results if "lsh_cluster_speedup" in e]
    largest = results[-1]
    headline: dict[str, object] = {
        "n": largest["n"],
        "lsh_seconds": largest["lsh_seconds"],
        "lsh_peak_bytes": largest["lsh_peak_bytes"],
    }
    if exact_entries:
        headline["speedup"] = exact_entries[-1]["speedup"]
        headline["speedup_n"] = exact_entries[-1]["n"]
    if lsh_entries:
        headline["lsh_cluster_speedup"] = lsh_entries[-1]["lsh_cluster_speedup"]
        headline["lsh_speedup_n"] = lsh_entries[-1]["n"]
    oracle_entries = [e for e in results if "lsh_oracle" in e]
    if oracle_entries:
        headline["lsh_recall_min"] = min(
            e["lsh_oracle"]["recall"] for e in oracle_entries
        )
    report = {
        "workload": {
            "dimension": DIMENSION,
            "blob_size": BLOB_SIZE,
            "radius_percentile": RADIUS_PERCENTILE,
            "target_degree": TARGET_DEGREE,
            "recall_floor": RECALL_FLOOR,
            "seed": seed,
        },
        "results": results,
        "headline": headline,
    }
    if min_speedup > 0:
        if not exact_entries:
            raise AssertionError("--min-speedup set but no dense-vs-sparse size ran")
        if exact_entries[-1]["speedup"] < min_speedup:
            raise AssertionError(
                f"headline speedup {exact_entries[-1]['speedup']}x below the "
                f"floor {min_speedup}x"
            )
    if min_lsh_speedup > 0:
        if not lsh_entries:
            raise AssertionError("--min-lsh-speedup set but no exact-sparse size ran")
        if lsh_entries[-1]["lsh_cluster_speedup"] < min_lsh_speedup:
            raise AssertionError(
                f"LSH cluster speedup {lsh_entries[-1]['lsh_cluster_speedup']}x "
                f"below the floor {min_lsh_speedup}x at n={lsh_entries[-1]['n']}"
            )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=lambda text: tuple(int(part) for part in text.split(",")),
        default=None,
        help="comma-separated question-set sizes (default: 2000,8000,20000,100000)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="append one extra size (e.g. --n 1000000) to the size list",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny sizes for the CI smoke run (all oracles on, no timing floor)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the largest dense-vs-sparse speedup reaches this floor",
    )
    parser.add_argument(
        "--min-lsh-speedup",
        type=float,
        default=0.0,
        help="fail unless the largest LSH-vs-exact cluster speedup reaches this floor",
    )
    parser.add_argument(
        "--max-peak-gb",
        type=float,
        default=16.0,
        help="fail if the LSH arm's traced peak exceeds this budget (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    sizes = args.sizes or (SMALL_SIZES if args.small else DEFAULT_SIZES)
    if args.n is not None and args.n not in sizes:
        sizes = tuple(sorted((*sizes, args.n)))
    report = run_planning_bench(
        sizes, args.min_speedup, args.min_lsh_speedup, args.max_peak_gb, args.seed
    )
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
