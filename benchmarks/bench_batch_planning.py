"""Benchmark: dense-matrix batch planning vs. the sparse neighbor-graph path.

*Batch planning* is everything between featurization and prompting: DBSCAN
clustering of the question feature vectors and covering-based demonstration
selection.  The pre-refactor implementation materialised the dense ``(n, n)``
pairwise matrix (plus the dense ``(n, m)`` question-to-pool matrix) and walked
them with per-point Python loops; the sparse path answers the same radius
queries over blocked CSR neighbor graphs
(:mod:`repro.clustering.neighbors`) with a lazy-greedy set cover.

The two arms are compared at identical, pre-resolved radii on a synthetic
Gaussian-blob workload, and the benchmark *asserts* that they produce
identical cluster labels and identical demonstration selections — it is an
equivalence oracle as much as a stopwatch.  Peak planning memory is measured
with ``tracemalloc`` (numpy buffers included), so the report shows both the
wall-time speedup and the collapse from quadratic to blocked memory.

Besides optional timing floors, the run emits ``BENCH_planning.json`` in the
repository root with the headline numbers.  The file is a machine-local
artifact (gitignored), not a tracked result.

Standalone (the CI smoke invocation uses ``--small --min-speedup 0``)::

    PYTHONPATH=src python benchmarks/bench_batch_planning.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.dbscan import DBSCAN, NOISE_LABEL
from repro.clustering.distance import pairwise_distances
from repro.clustering.neighbors import NeighborPlanner, sample_percentile_radius
from repro.data.schema import EntityPair, MatchLabel, Record
from repro.selection.covering import CoveringSelector
from repro.selection.set_cover import greedy_set_cover_eager
from repro.text.tokenizer import ApproxTokenizer

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planning.json"

#: Default question-set sizes (dense vs sparse compared at every size).
DEFAULT_SIZES = (2000, 8000, 20000)

#: Sizes of the CI smoke run.
SMALL_SIZES = (300, 600)

#: Feature dimensionality of the synthetic workload.
DIMENSION = 8

#: Points per Gaussian blob (controls neighbourhood density).
BLOB_SIZE = 40

#: Percentile used to resolve the shared eps / covering threshold t.  Low on
#: purpose: realistic planning radii keep neighbourhoods small relative to n.
RADIUS_PERCENTILE = 0.5


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def make_workload(n: int, m: int, seed: int = 11):
    """Synthetic planning workload: blobby question/pool features + pairs."""
    rng = np.random.default_rng(seed)
    num_blobs = max(1, n // BLOB_SIZE)
    centers = rng.normal(scale=4.0, size=(num_blobs, DIMENSION))
    assignments = rng.integers(0, num_blobs, size=n)
    question_features = centers[assignments] + rng.normal(scale=0.25, size=(n, DIMENSION))
    pool_assignments = rng.integers(0, num_blobs, size=m)
    pool_features = centers[pool_assignments] + rng.normal(scale=0.25, size=(m, DIMENSION))

    def make_pair(tag: str, index: int, label: MatchLabel | None) -> EntityPair:
        values = {"name": f"{tag} item {index}", "price": str(index % 997)}
        return EntityPair(
            pair_id=f"{tag}-{index}",
            left=Record(record_id=f"{tag}-l{index}", values=values),
            right=Record(record_id=f"{tag}-r{index}", values=values),
            label=label,
        )

    questions = [make_pair("q", i, None) for i in range(n)]
    pool = [make_pair("d", i, MatchLabel(int(rng.integers(0, 2)))) for i in range(m)]
    return question_features, pool_features, questions, pool


def make_batches(questions, batch_size: int = 8, seed: int = 5) -> list[QuestionBatch]:
    """Chunk a shuffled question order into batches (shared by both arms)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(questions))
    batches = []
    for batch_id, start in enumerate(range(0, len(order), batch_size)):
        indices = tuple(int(i) for i in order[start : start + batch_size])
        batches.append(
            QuestionBatch(
                batch_id=batch_id,
                indices=indices,
                pairs=tuple(questions[i] for i in indices),
            )
        )
    return batches


# -- the dense baseline: the pre-refactor planning implementation -------------


def baseline_dbscan(features: np.ndarray, eps: float, min_samples: int = 2):
    """Pre-refactor DBSCAN: dense matrix, per-point neighbour lists, list BFS."""
    n = features.shape[0]
    distances = pairwise_distances(features)
    neighbour_lists = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core_mask = np.array(
        [len(neighbours) >= min_samples for neighbours in neighbour_lists]
    )
    labels = np.full(n, NOISE_LABEL, dtype=int)
    cluster_id = 0
    for point in range(n):
        if labels[point] != NOISE_LABEL or not core_mask[point]:
            continue
        labels[point] = cluster_id
        frontier = list(neighbour_lists[point])
        while frontier:
            neighbour = int(frontier.pop())
            if labels[neighbour] == NOISE_LABEL:
                labels[neighbour] = cluster_id
                if core_mask[neighbour]:
                    frontier.extend(
                        int(candidate)
                        for candidate in neighbour_lists[neighbour]
                        if labels[candidate] == NOISE_LABEL
                    )
        cluster_id += 1
    return labels


def baseline_covering(
    batches, question_features, pool, pool_features, threshold: float
):
    """Pre-refactor covering selection: dense (n, m) matrix, eager set cover."""
    from repro.clustering.distance import cross_distances
    from repro.data.serialization import serialize_pair

    tokenizer = ApproxTokenizer()
    distances = cross_distances(question_features, pool_features)
    num_questions, num_pool = distances.shape
    coverage = [
        frozenset(np.flatnonzero(distances[:, demo] < threshold).tolist())
        for demo in range(num_pool)
    ]
    generation = greedy_set_cover_eager(num_questions, coverage, weights=None)
    demonstration_set = list(generation.selected)
    for question_index in sorted(generation.uncovered_items):
        nearest = int(np.argmin(distances[question_index]))
        if nearest not in demonstration_set:
            demonstration_set.append(nearest)
    token_weights = {
        demo: max(1.0, float(tokenizer.count(serialize_pair(pool[demo]))))
        for demo in demonstration_set
    }
    per_batch = []
    for batch in batches:
        batch_questions = list(batch.indices)
        local_coverage = []
        for demo in demonstration_set:
            local_coverage.append(
                frozenset(
                    position
                    for position, question_index in enumerate(batch_questions)
                    if distances[question_index, demo] < threshold
                )
            )
        solution = greedy_set_cover_eager(
            len(batch_questions),
            local_coverage,
            weights=[token_weights[demo] for demo in demonstration_set],
        )
        chosen = [demonstration_set[position] for position in solution.selected]
        for position in sorted(solution.uncovered_items):
            question_index = batch_questions[position]
            nearest_demo = min(
                demonstration_set, key=lambda demo: distances[question_index, demo]
            )
            if nearest_demo not in chosen:
                chosen.append(nearest_demo)
        per_batch.append(tuple(dict.fromkeys(chosen)))
    return tuple(per_batch)


# -- the two arms --------------------------------------------------------------


def run_dense_arm(question_features, pool_features, pool, batches, eps, threshold):
    labels = baseline_dbscan(question_features, eps)
    selections = baseline_covering(
        batches, question_features, pool, pool_features, threshold
    )
    return labels, selections


def run_sparse_arm(question_features, pool_features, pool, batches, eps, threshold):
    planner = NeighborPlanner(dense_threshold=0)
    labels = DBSCAN(eps=eps, min_samples=2, planner=planner).fit(question_features).labels
    selector = CoveringSelector(threshold=threshold, planner=planner)
    result = selector.select(batches, question_features, pool, pool_features)
    selections = tuple(batch.pool_indices for batch in result.per_batch)
    return labels, selections


def _traced(fn):
    """Run ``fn`` and return (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    try:
        result, seconds = _timed(fn)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, seconds, peak


def run_planning_bench(sizes, min_speedup: float, seed: int) -> dict[str, object]:
    results = []
    for n in sizes:
        m = max(50, min(2000, n // 10))
        question_features, pool_features, questions, pool = make_workload(n, m, seed)
        batches = make_batches(questions)
        # Both arms plan at identical radii, resolved once from a seeded
        # sample — radius resolution is part of the planner but not of this
        # stopwatch, which isolates the geometry consumers.
        eps = sample_percentile_radius(question_features, RADIUS_PERCENTILE)
        threshold = sample_percentile_radius(
            question_features, RADIUS_PERCENTILE * 0.8
        )

        (dense_out, dense_seconds, dense_peak) = _traced(
            lambda: run_dense_arm(
                question_features, pool_features, pool, batches, eps, threshold
            )
        )
        (sparse_out, sparse_seconds, sparse_peak) = _traced(
            lambda: run_sparse_arm(
                question_features, pool_features, pool, batches, eps, threshold
            )
        )
        dense_labels, dense_selections = dense_out
        sparse_labels, sparse_selections = sparse_out
        if not np.array_equal(dense_labels, sparse_labels):
            raise AssertionError(f"n={n}: sparse DBSCAN labels diverge from dense")
        if dense_selections != sparse_selections:
            raise AssertionError(f"n={n}: sparse covering selections diverge from dense")
        entry = {
            "n": n,
            "m": m,
            "batches": len(batches),
            "dense_seconds": round(dense_seconds, 4),
            "sparse_seconds": round(sparse_seconds, 4),
            "speedup": round(dense_seconds / sparse_seconds, 2) if sparse_seconds else None,
            "dense_peak_bytes": dense_peak,
            "sparse_peak_bytes": sparse_peak,
            "dense_matrix_bytes": n * n * 8,
            "equal": True,
        }
        results.append(entry)
        print(
            f"n={n:>6} m={m:>5}  dense {dense_seconds:8.2f}s / {dense_peak / 1e6:9.1f} MB"
            f"   sparse {sparse_seconds:8.2f}s / {sparse_peak / 1e6:9.1f} MB"
            f"   speedup {entry['speedup']}x",
            file=sys.stderr,
        )
    largest = results[-1]
    report = {
        "workload": {
            "dimension": DIMENSION,
            "blob_size": BLOB_SIZE,
            "radius_percentile": RADIUS_PERCENTILE,
            "seed": seed,
        },
        "results": results,
        "headline": {
            "n": largest["n"],
            "speedup": largest["speedup"],
            "dense_peak_bytes": largest["dense_peak_bytes"],
            "sparse_peak_bytes": largest["sparse_peak_bytes"],
            "memory_ratio": round(
                largest["dense_peak_bytes"] / max(1, largest["sparse_peak_bytes"]), 2
            ),
        },
    }
    if min_speedup > 0 and largest["speedup"] < min_speedup:
        raise AssertionError(
            f"headline speedup {largest['speedup']}x below the floor {min_speedup}x"
        )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=lambda text: tuple(int(part) for part in text.split(",")),
        default=None,
        help="comma-separated question-set sizes (default: 2000,8000,20000)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny sizes for the CI smoke run (equality oracle, no timing floor)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the largest-n speedup reaches this floor (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    sizes = args.sizes or (SMALL_SIZES if args.small else DEFAULT_SIZES)
    report = run_planning_bench(sizes, args.min_speedup, args.seed)
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
