"""Micro-benchmarks of the core components (not tied to a paper artifact).

These time the individual substrates — string similarity, feature extraction,
DBSCAN clustering, the greedy set cover and a single simulated LLM call — so
performance regressions in the building blocks are caught independently of the
end-to-end experiment timings.
"""

import numpy as np

from repro.clustering.dbscan import DBSCAN
from repro.data.registry import load_dataset
from repro.features.structure_aware import StructureAwareExtractor
from repro.llm.simulated import SimulatedLLM
from repro.prompting.batch import BatchPromptBuilder
from repro.selection.set_cover import greedy_set_cover
from repro.text.similarity import levenshtein_ratio
from repro.text.tokenizer import ApproxTokenizer


def test_levenshtein_ratio_speed(benchmark):
    left = "Samsung Professional LED TV QX-4821B with wall mount"
    right = "Samsung Professional LED Television QX-4821 wall mount kit"
    result = benchmark(levenshtein_ratio, left, right)
    assert 0.0 <= result <= 1.0


def test_tokenizer_speed(benchmark):
    tokenizer = ApproxTokenizer()
    text = " ".join(["title: Samsung LED TV QX-4821B, price: 499.99"] * 50)
    count = benchmark(tokenizer.count, text)
    assert count > 100


def test_structure_feature_extraction_speed(benchmark):
    dataset = load_dataset("wa", seed=7, scale=0.02)
    pairs = list(dataset.splits.test)[:64]
    extractor = StructureAwareExtractor(dataset.attributes)
    matrix = benchmark(extractor.extract_matrix, pairs)
    assert matrix.shape == (len(pairs), len(dataset.attributes))


def test_dbscan_speed(benchmark):
    rng = np.random.default_rng(0)
    features = rng.random((256, 5))
    clusterer = DBSCAN(min_samples=3)
    result = benchmark(clusterer.fit, features)
    assert len(result.labels) == 256


def test_greedy_set_cover_speed(benchmark):
    rng = np.random.default_rng(0)
    num_items, num_candidates = 200, 400
    coverage = [
        frozenset(rng.choice(num_items, size=rng.integers(1, 12), replace=False).tolist())
        for _ in range(num_candidates)
    ]
    solution = benchmark(greedy_set_cover, num_items, coverage)
    assert solution.selected


def test_simulated_llm_batch_call_speed(benchmark):
    dataset = load_dataset("beer", seed=7)
    questions = list(dataset.splits.test)[:8]
    demonstrations = list(dataset.splits.train)[:8]
    prompt = BatchPromptBuilder(dataset.attributes).build(questions, demonstrations)
    llm = SimulatedLLM("gpt-3.5-03", seed=1)
    response = benchmark(llm.complete, prompt.text)
    assert response.prompt_tokens > 0
