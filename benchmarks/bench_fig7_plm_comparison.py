"""Benchmark: Exp-3, Figure 7 — BatchER vs PLM-based baselines."""

from conftest import print_rows, run_once

from repro.experiments.exp3_plm_comparison import crossover_summary, run_exp3_plm_comparison


def test_figure7_plm_comparison(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp3_plm_comparison, bench_settings)
    datasets = {row["Dataset"] for row in rows}
    assert datasets == {bench_settings.load(name).name for name in bench_settings.datasets}

    # Shape check (paper Finding 3): BatchER consumes far fewer labels than the
    # largest PLM training set, and the baselines' F1 is non-trivially lower at
    # their smallest training size than at their largest on most datasets
    # (i.e. the learning curves actually rise).
    for dataset in datasets:
        dataset_rows = [row for row in rows if row["Dataset"] == dataset]
        batcher_labels = next(
            row["Train samples"] for row in dataset_rows if row["Method"] == "BatchER"
        )
        max_plm_labels = max(
            row["Train samples"] for row in dataset_rows if row["Method"] != "BatchER"
        )
        assert batcher_labels < max_plm_labels

    print_rows("Figure 7 — F1 vs training samples", rows)
    print_rows("Figure 7 — labels needed to reach BatchER", crossover_summary(rows))
