"""Benchmark: async engine dispatch — in-flight concurrency vs throughput.

Batch prompts are independent, so wall-clock against a remote LLM API is
dominated by how many requests the client keeps in flight.  This benchmark
models that with the simulated engine's injected per-call latency and sweeps
the :class:`~repro.llm.executors.AsyncExecutor` in-flight budget, with the
serial path as the baseline and the thread-pool
:class:`~repro.llm.executors.ConcurrentExecutor` at the widest budget for
comparison.

Two oracles assert along the way:

1. **identity** — every arm (serial, threaded, async at every width) returns
   byte-identical responses: dispatch concurrency must never change results;
2. **flaky-retry parity** — an OpenAI-dialect engine over the simulated
   backend transport with injected 503s at fixed send ordinals, dispatched
   through the AsyncExecutor, still matches the clean serial run exactly —
   same responses, same usage totals, zero double-counted records — because
   retry sits below dispatch and responses are pure functions of the prompt.

Like the other benchmarks, the run emits ``BENCH_async.json`` in the
repository root with the headline numbers; the file is a machine-local
artifact (gitignored), not a tracked result.

Standalone (the CI smoke invocation uses ``--small --min-speedup 0``)::

    PYTHONPATH=src python benchmarks/bench_async_dispatch.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engines import FakeClock, FlakyTransport, SimulatedBackendTransport, create_engine
from repro.llm.executors import AsyncExecutor, ConcurrentExecutor, SerialExecutor
from repro.llm.simulated import SimulatedLLM

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"

#: In-flight budgets swept by the async arm.
DEFAULT_IN_FLIGHT = (1, 4, 16, 64)

#: Workload of the full run: prompts and injected per-call latency.
DEFAULT_PROMPTS = 64
DEFAULT_LATENCY = 0.02

#: Workload of the CI smoke run.
SMALL_PROMPTS = 16
SMALL_LATENCY = 0.005


def make_prompts(count: int) -> list[str]:
    return [
        f"Q{i}: do entity A (item {i}) and entity B (item {i}) refer to the same "
        "real-world entity? Answer 'A1: Yes' or 'A1: No'."
        for i in range(count)
    ]


def timed_arm(latency: float, executor, prompts: list[str]):
    """Run one dispatch arm on a fresh latency-injected engine."""
    engine = create_engine("simulated", seed=0, latency_seconds=latency)
    started = time.perf_counter()
    responses = engine.complete_many(prompts, executor=executor)
    seconds = time.perf_counter() - started
    if engine.usage.num_calls != len(prompts):
        raise AssertionError(
            f"expected {len(prompts)} usage records, got {engine.usage.num_calls}"
        )
    return responses, seconds


def check_flaky_retry_parity(prompts: list[str], in_flight: int) -> dict[str, object]:
    """Assert async dispatch over a flaky transport matches the clean run."""

    def build(fail_at):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        transport = SimulatedBackendTransport(sim)
        if fail_at:
            transport = FlakyTransport(transport, fail_at=fail_at)
        return create_engine(
            "openai", transport=transport, clock=FakeClock(), api_key="bench-key", seed=0
        )

    clean = build(frozenset())
    expected = clean.complete_many(prompts, executor=SerialExecutor())

    fail_at = frozenset(range(1, len(prompts), 3))  # every third send 503s once
    flaky = build(fail_at)
    actual = flaky.complete_many(prompts, executor=AsyncExecutor(max_in_flight=in_flight))
    if actual != expected:
        raise AssertionError("flaky async run diverges from the clean serial run")
    if flaky.usage.num_calls != clean.usage.num_calls:
        raise AssertionError(
            f"retries double-counted usage: {flaky.usage.num_calls} records "
            f"for {clean.usage.num_calls} prompts"
        )
    if flaky.usage.total_tokens != clean.usage.total_tokens:
        raise AssertionError("retries changed the usage token totals")
    stats = flaky.transport.stats()
    return {
        "injected_failures": flaky.transport.inner.injected_failures,
        "retries": stats["retries"],
        "requests": stats["requests"],
        "usage_records": flaky.usage.num_calls,
        "identical_to_clean_serial": True,
    }


def run_bench(
    num_prompts: int,
    latency: float,
    in_flight_levels: tuple[int, ...],
    min_speedup: float,
) -> dict[str, object]:
    prompts = make_prompts(num_prompts)

    oracle, serial_seconds = timed_arm(latency, SerialExecutor(), prompts)
    serial_throughput = num_prompts / serial_seconds
    print(
        f"serial              {serial_seconds:6.2f}s  "
        f"{serial_throughput:8.1f} prompts/s",
        file=sys.stderr,
    )

    widest = max(in_flight_levels)
    threaded, threaded_seconds = timed_arm(
        latency, ConcurrentExecutor(max_workers=widest), prompts
    )
    if threaded != oracle:
        raise AssertionError("threaded responses diverge from serial")
    print(
        f"threads x{widest:<3d}        {threaded_seconds:6.2f}s  "
        f"{num_prompts / threaded_seconds:8.1f} prompts/s",
        file=sys.stderr,
    )

    sweep = []
    for level in in_flight_levels:
        responses, seconds = timed_arm(
            latency, AsyncExecutor(max_in_flight=level), prompts
        )
        if responses != oracle:
            raise AssertionError(f"async x{level} responses diverge from serial")
        throughput = num_prompts / seconds
        sweep.append(
            {
                "in_flight": level,
                "seconds": round(seconds, 4),
                "prompts_per_second": round(throughput, 1),
                "speedup_vs_serial": round(seconds and serial_seconds / seconds, 2),
            }
        )
        print(
            f"async in_flight={level:<3d} {seconds:6.2f}s  "
            f"{throughput:8.1f} prompts/s",
            file=sys.stderr,
        )

    best = max(sweep, key=lambda row: row["prompts_per_second"])
    if best["speedup_vs_serial"] < min_speedup:
        raise AssertionError(
            f"best async speedup {best['speedup_vs_serial']}x is below the "
            f"--min-speedup floor {min_speedup}x"
        )

    parity = check_flaky_retry_parity(prompts, in_flight=min(8, widest))
    print(
        f"flaky-retry parity  injected={parity['injected_failures']} "
        f"retries={parity['retries']} usage_records={parity['usage_records']}",
        file=sys.stderr,
    )

    return {
        "workload": {
            "prompts": num_prompts,
            "injected_latency_seconds": latency,
            "engine": "simulated",
        },
        "serial": {
            "seconds": round(serial_seconds, 4),
            "prompts_per_second": round(serial_throughput, 1),
        },
        "threads": {
            "max_workers": widest,
            "seconds": round(threaded_seconds, 4),
            "prompts_per_second": round(num_prompts / threaded_seconds, 1),
        },
        "async_sweep": sweep,
        "flaky_retry_parity": parity,
        "headline": {
            "best_in_flight": best["in_flight"],
            "best_prompts_per_second": best["prompts_per_second"],
            "speedup_vs_serial": best["speedup_vs_serial"],
            "identical_responses": True,
            "retry_parity": True,
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--prompts", type=int, default=None, help="number of prompts dispatched per arm"
    )
    parser.add_argument(
        "--latency", type=float, default=None, help="injected per-call latency (seconds)"
    )
    parser.add_argument(
        "--in-flight", type=int, nargs="*", default=None, help="async budgets to sweep"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail if the best async arm is not at least this much faster than "
        "serial (0 disables the timing floor; the identity and retry-parity "
        "oracles always assert)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny run for the CI smoke invocation (oracles still assert)",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    num_prompts = args.prompts or (SMALL_PROMPTS if args.small else DEFAULT_PROMPTS)
    latency = args.latency or (SMALL_LATENCY if args.small else DEFAULT_LATENCY)
    levels = tuple(args.in_flight) if args.in_flight else (
        (1, 4, 16) if args.small else DEFAULT_IN_FLIGHT
    )
    report = run_bench(num_prompts, latency, levels, args.min_speedup)
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
