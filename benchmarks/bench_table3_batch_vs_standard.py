"""Benchmark: Exp-1, Table III — batch prompting vs standard prompting."""

from conftest import print_rows, run_once

from repro.experiments.exp1_standard_vs_batch import run_exp1_standard_vs_batch


def test_table3_batch_vs_standard(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp1_standard_vs_batch, bench_settings)
    assert len(rows) == len(bench_settings.datasets)

    # Shape check (paper Finding 1): batch prompting brings a multi-x API cost
    # saving on every dataset, and wins or ties on F1 for most datasets.
    savings = [row["Cost saving (x)"] for row in rows]
    assert all(saving > 2.0 for saving in savings)
    batch_wins = sum(
        1
        for row in rows
        if float(str(row["Batch F1"]).split("±")[0]) >= float(str(row["Standard F1"]).split("±")[0])
    )
    assert batch_wins >= len(rows) / 2

    print_rows("Table III — Batch vs Standard Prompting", rows)
