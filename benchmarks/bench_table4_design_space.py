"""Benchmark: Exp-2, Table IV — the full design-space exploration."""

from conftest import print_rows, run_once

from repro.experiments.exp2_design_space import best_design_choice, run_exp2_design_space


def test_table4_design_space(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp2_design_space, bench_settings)
    assert len(rows) == len(bench_settings.datasets) * 12

    # Shape check (paper Finding 2): the covering strategy's labeling cost is a
    # small fraction of top-k-question's on every dataset.
    for dataset in {row["Dataset"] for row in rows}:
        covering_cost = max(
            row["Label ($)"] for row in rows
            if row["Dataset"] == dataset and row["Selection"] == "Cover"
        )
        topk_cost = min(
            row["Label ($)"] for row in rows
            if row["Dataset"] == dataset and row["Selection"] == "Topk-question"
        )
        assert covering_cost <= topk_cost

    print_rows("Table IV — Design space (3 batching x 4 selection)", rows)
    print_rows("Best design choice", [best_design_choice(rows)])
