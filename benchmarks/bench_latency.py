"""Benchmark: serving latency under concurrent multi-tenant load.

Three arms:

1. **Closed-loop load** — synthetic concurrent users against the asyncio
   front end (:class:`~repro.service.aio.AsyncServiceHTTPServer`) over real
   HTTP.  Each user is a closed loop: it POSTs one pair, waits for the
   response, and immediately posts the next.  The engine is the simulated
   LLM, so the numbers isolate the serving stack (socket handling, routing,
   micro-batching, cache) from model latency.  Emits p50/p95/p99 and
   throughput per concurrency level.
2. **Identity oracle** — two fresh, identically-seeded services, one behind
   the threaded front end and one behind the asyncio front end, are driven
   through the same sequential workload (a live pass and a cached pass).
   Every response body must be byte-identical across the two transports —
   both delegate to the shared ``ServiceRouter``, and this arm proves it at
   the wire level.  Asserted, and timing-independent.
3. **Fairness oracle** — two tenants with equal quotas on a virtual clock:
   a greedy tenant hammers admission far past its rate while a respectful
   tenant submits exactly at its quota.  The respectful tenant must never be
   rejected (per-tenant buckets isolate it) and the greedy tenant must be
   capped near its quota with no accumulated debt.  Asserted, deterministic
   (FakeClock), timing-independent.

The report lands in ``BENCH_latency.json`` at the repository root and is
*tracked*: the oracle outcomes and level schema are stable facts; the
latency numbers themselves are machine-local context.

Standalone (the CI smoke invocation uses ``--small --oracles-only``)::

    PYTHONPATH=src python benchmarks/bench_latency.py
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.engines.faults import FakeClock
from repro.service.aio import AsyncServiceHTTPServer
from repro.service.config import ServiceConfig
from repro.service.http import ServiceHTTPServer
from repro.service.service import ResolutionService
from repro.service.tenants import (
    TenantConfig,
    TenantManager,
    TenantQuotaExceeded,
)

#: Where the headline numbers land (repository root, tracked).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_latency.json"

DEFAULT_LEVELS = (1, 4, 16)
SMALL_LEVELS = (1, 4)

DEFAULT_REQUESTS_PER_USER = 25
SMALL_REQUESTS_PER_USER = 5

#: Pairs driven through each front end by the identity arm.
DEFAULT_IDENTITY_PAIRS = 24
SMALL_IDENTITY_PAIRS = 8

#: Virtual seconds simulated by the fairness arm.
FAIRNESS_SECONDS = 20
#: Shared per-tenant quota (pairs/second) in the fairness arm.
FAIRNESS_QUOTA = 5.0
#: Greedy attempts per virtual second (10x its quota).
FAIRNESS_GREED = 50


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def _build_service(seed: int = 1) -> ResolutionService:
    dataset = load_dataset("beer", seed=7)
    config = ServiceConfig(
        batcher=BatcherConfig(seed=seed),
        max_batch_size=16,
        max_wait_seconds=0.01,
        num_workers=4,
    )
    return ResolutionService.from_dataset(dataset, config)


def _post(base: str, payload: bytes) -> bytes:
    request = urllib.request.Request(
        f"{base}/resolve", data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60.0) as response:
        if response.status != 200:
            raise AssertionError(f"expected 200, got {response.status}")
        return response.read()


def _pair_payload(pair_id: str, left: str, right: str) -> bytes:
    return json.dumps(
        {
            "pairs": [
                {
                    "pair_id": pair_id,
                    "left": {"name": left},
                    "right": {"name": right},
                }
            ]
        }
    ).encode("utf-8")


def load_arm(
    levels: tuple[int, ...], requests_per_user: int
) -> list[dict[str, object]]:
    """Arm 1: closed-loop concurrent users against the asyncio front end."""
    results = []
    for concurrency in levels:
        service = _build_service().start()
        server = AsyncServiceHTTPServer(service, port=0).serve_in_background()
        latencies: list[float] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def user(user_id: int) -> None:
            try:
                for i in range(requests_per_user):
                    # A small vocabulary: early requests resolve live, later
                    # ones ride the cache — the realistic mixed path.
                    left = f"brew-{(user_id + i) % 8}"
                    payload = _pair_payload(
                        f"u{user_id}-r{i}", left, left.upper()
                    )
                    started = time.perf_counter()
                    _post(server.address, payload)
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
            except BaseException as error:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=user, args=(user_id,))
            for user_id in range(concurrency)
        ]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started
        server.shutdown()
        service.stop()

        if errors:
            raise AssertionError(f"load arm failed at c={concurrency}: {errors[0]}")
        expected = concurrency * requests_per_user
        if len(latencies) != expected:
            raise AssertionError(
                f"load arm lost requests: {len(latencies)}/{expected}"
            )
        ordered = sorted(latencies)
        results.append(
            {
                "concurrency": concurrency,
                "requests": expected,
                "p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
                "p95_ms": round(_percentile(ordered, 0.95) * 1000, 3),
                "p99_ms": round(_percentile(ordered, 0.99) * 1000, 3),
                "throughput_rps": round(expected / wall, 1) if wall > 0 else None,
            }
        )
    return results


def identity_arm(num_pairs: int) -> dict[str, object]:
    """Arm 2: the two front ends must answer with byte-identical bodies."""
    dataset = load_dataset("beer", seed=7)
    pairs = [pair.without_label() for pair in dataset.splits.test][:num_pairs]

    def drive(frontend: str) -> list[bytes]:
        service = _build_service().start()
        if frontend == "async":
            server = AsyncServiceHTTPServer(service, port=0).serve_in_background()
        else:
            server = ServiceHTTPServer(service, port=0).serve_in_background()
        try:
            bodies = []
            # Live pass then cached pass: both code paths must agree too.
            for _ in range(2):
                for index, pair in enumerate(pairs):
                    payload = json.dumps(
                        {
                            "pairs": [
                                {
                                    "pair_id": f"id-{index}",
                                    "left": dict(pair.left.values),
                                    "right": dict(pair.right.values),
                                }
                            ]
                        }
                    ).encode("utf-8")
                    bodies.append(_post(server.address, payload))
            return bodies
        finally:
            server.shutdown()
            if frontend == "threaded":
                server.server_close()
            service.stop()

    threaded_bodies = drive("threaded")
    async_bodies = drive("async")
    identical = threaded_bodies == async_bodies
    if not identical:
        mismatches = sum(
            1 for a, b in zip(threaded_bodies, async_bodies) if a != b
        )
        raise AssertionError(
            f"front ends disagree on {mismatches}/{len(threaded_bodies)} bodies"
        )
    return {
        "pairs": num_pairs,
        "responses_compared": len(threaded_bodies),
        "byte_identical": identical,
    }


def fairness_arm() -> dict[str, object]:
    """Arm 3: a greedy tenant must not starve a quota-respecting one."""
    clock = FakeClock()
    manager = TenantManager(
        (
            TenantConfig(
                name="greedy",
                api_key="k-greedy",
                requests_per_second=FAIRNESS_QUOTA,
                burst=FAIRNESS_QUOTA,
            ),
            TenantConfig(
                name="respectful",
                api_key="k-respectful",
                requests_per_second=FAIRNESS_QUOTA,
                burst=FAIRNESS_QUOTA,
            ),
        ),
        clock=clock,
    )
    greedy = manager.authenticate("k-greedy")
    respectful = manager.authenticate("k-respectful")
    assert greedy is not None and respectful is not None

    respectful_rejections = 0
    for _ in range(FAIRNESS_SECONDS):
        # The greedy tenant fires 10x its quota in a burst...
        for _ in range(FAIRNESS_GREED):
            try:
                greedy.admit()
            except TenantQuotaExceeded:
                pass
        # ...while the respectful one submits exactly its quota, spread out.
        per_second = int(FAIRNESS_QUOTA)
        for _ in range(per_second):
            try:
                respectful.admit()
            except TenantQuotaExceeded:
                respectful_rejections += 1
            clock.advance(1.0 / per_second)

    greedy_stats = greedy.stats()
    respectful_stats = respectful.stats()
    if respectful_rejections != 0:
        raise AssertionError(
            f"respectful tenant was rejected {respectful_rejections} times "
            "despite staying within quota — starved by the greedy tenant"
        )
    expected_respectful = FAIRNESS_SECONDS * int(FAIRNESS_QUOTA)
    if respectful_stats["admitted"] != expected_respectful:
        raise AssertionError(
            f"respectful tenant admitted {respectful_stats['admitted']}, "
            f"expected {expected_respectful}"
        )
    # The greedy tenant is capped near its quota: its burst capacity up
    # front plus its refill rate over the window, not one request more.
    cap = FAIRNESS_QUOTA + FAIRNESS_SECONDS * FAIRNESS_QUOTA
    if greedy_stats["admitted"] > cap:
        raise AssertionError(
            f"greedy tenant admitted {greedy_stats['admitted']}, "
            f"quota cap is {cap:g}"
        )
    if greedy_stats["rejected_quota"] == 0:
        raise AssertionError("greedy tenant was never rejected; harness broken")
    return {
        "virtual_seconds": FAIRNESS_SECONDS,
        "quota_pairs_per_second": FAIRNESS_QUOTA,
        "greedy_attempts_per_second": FAIRNESS_GREED,
        "greedy_admitted": greedy_stats["admitted"],
        "greedy_rejected": greedy_stats["rejected_quota"],
        "respectful_admitted": respectful_stats["admitted"],
        "respectful_rejected": respectful_rejections,
        "respectful_unstarved": respectful_rejections == 0,
    }


def run_bench(
    levels: tuple[int, ...],
    requests_per_user: int,
    identity_pairs: int,
    oracles_only: bool,
) -> dict[str, object]:
    arms: dict[str, object] = {}
    arms["identity"] = identity_arm(identity_pairs)
    arms["fairness"] = fairness_arm()
    arms["load"] = [] if oracles_only else load_arm(levels, requests_per_user)
    headline: dict[str, object] = {
        "identity_byte_identical": arms["identity"]["byte_identical"],
        "fairness_respectful_unstarved": arms["fairness"]["respectful_unstarved"],
    }
    for level in arms["load"]:
        headline[f"p99_ms_c{level['concurrency']}"] = level["p99_ms"]
    return {
        "benchmark": "serving-latency",
        "frontend": "asyncio (threaded as identity oracle)",
        "engine": "simulated LLM (virtual cost)",
        "arms": arms,
        "headline": headline,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--levels",
        type=int,
        nargs="+",
        default=None,
        help="concurrency levels for the closed-loop load arm",
    )
    parser.add_argument(
        "--requests-per-user",
        type=int,
        default=None,
        help="requests each synthetic user issues per level",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny run for the CI smoke invocation (oracles still assert)",
    )
    parser.add_argument(
        "--oracles-only",
        action="store_true",
        help="skip the timing arm; run only the identity and fairness oracles",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    levels = tuple(args.levels) if args.levels else (
        SMALL_LEVELS if args.small else DEFAULT_LEVELS
    )
    requests_per_user = args.requests_per_user or (
        SMALL_REQUESTS_PER_USER if args.small else DEFAULT_REQUESTS_PER_USER
    )
    identity_pairs = SMALL_IDENTITY_PAIRS if args.small else DEFAULT_IDENTITY_PAIRS
    report = run_bench(levels, requests_per_user, identity_pairs, args.oracles_only)
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    sys.exit(main())
