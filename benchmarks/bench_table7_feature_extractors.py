"""Benchmark: Exp-6, Table VII — feature extractors."""

from conftest import print_rows, run_once

from repro.experiments.exp6_feature_extractors import run_exp6_feature_extractors


def test_table7_feature_extractors(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp6_feature_extractors, bench_settings)
    assert len(rows) == len(bench_settings.datasets)

    # Shape check (paper Finding 6): the structure-aware LR extractor is at
    # least competitive with the other variants on average.
    mean = lambda key: sum(row[key] for row in rows) / len(rows)
    assert mean("BatchER-LR") >= mean("BatchER-SEM") - 3.0
    assert mean("BatchER-LR") >= mean("BatchER-JAC") - 3.0

    print_rows("Table VII — Feature extractors", rows)
