"""Benchmark: Exp-1, Figure 6 — precision/recall detail on WA and AB."""

from conftest import print_rows, run_once

from repro.experiments.exp1_standard_vs_batch import run_figure6_precision_recall


def test_figure6_precision_recall(benchmark, bench_settings):
    rows = run_once(benchmark, run_figure6_precision_recall, bench_settings)
    assert len(rows) == 4  # two datasets x two methods

    # Shape check: batch prompting's precision is at least standard prompting's
    # on these datasets (the paper attributes its F1 gain to precision).
    for dataset in ("WA", "AB"):
        standard = next(r for r in rows if r["Dataset"] == dataset and r["Method"] == "Standard")
        batch = next(r for r in rows if r["Dataset"] == dataset and r["Method"] == "Batch")
        assert batch["Precision"] >= standard["Precision"] - 5.0

    print_rows("Figure 6 — Precision / Recall / F1 on WA and AB", rows)
