"""Benchmark: Exp-4, Table V — BatchER vs ManualPrompt."""

from conftest import print_rows, run_once

from repro.experiments.exp4_manual_prompt import run_exp4_manual_prompt


def test_table5_manual_prompt(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp4_manual_prompt, bench_settings)
    assert rows, "expected at least one dataset row"

    # Shape check (paper Finding 4): batch prompting needs a fraction of
    # ManualPrompt's API budget (the paper reports roughly 20%).
    assert all(row["API saving (x)"] > 2.0 for row in rows)

    print_rows("Table V — ManualPrompt vs Batch Prompting", rows)
