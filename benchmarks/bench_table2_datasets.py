"""Benchmark: regenerate Table II (dataset statistics)."""

from conftest import print_rows, run_once

from repro.experiments.datasets_table import run_dataset_statistics


def test_table2_dataset_statistics(benchmark, bench_settings):
    rows = run_once(benchmark, run_dataset_statistics, bench_settings)
    assert len(rows) == len(bench_settings.datasets)
    for row in rows:
        assert row["# Matches"] <= row["# Pairs"]
    print_rows("Table II — Dataset statistics (scaled)", rows)
