"""Benchmark: the sharded, checkpointable run engine vs. the monolithic path.

Three arms over one fixed-seed benchmark run:

1. **unsharded** — the historical single-pass ``BatchER.run`` (the oracle);
2. **sharded** — the same run split into shards by the
   :class:`~repro.engine.engine.RunEngine`, executed concurrently with
   per-batch checkpoints.  The benchmark *asserts* the ``RunResult`` is
   byte-identical to the oracle;
3. **crash + resume** — the sharded run killed mid-flight with a
   deterministic :class:`~repro.engine.faults.CrashingLLM`, then resumed from
   its checkpoints.  The benchmark *asserts* the resumed result is again
   byte-identical and that the crash + resume together made exactly as many
   LLM calls as the oracle — zero repeated (re-paid) calls.

Like the other benchmarks, the run emits ``BENCH_engine.json`` in the
repository root with the headline numbers; the file is a machine-local
artifact (gitignored), not a tracked result.

Standalone (the CI smoke invocation uses ``--small``)::

    PYTHONPATH=src python benchmarks/bench_sharded_run.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.engine import CrashingLLM, InjectedFault, RunEngine
from repro.llm.executors import ConcurrentExecutor
from repro.llm.registry import create_llm

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _assert_identical(result, oracle, arm: str) -> None:
    if result != oracle or repr(result) != repr(oracle):
        raise AssertionError(f"{arm}: RunResult diverges from the unsharded oracle")


def run_engine_bench(
    dataset_name: str,
    seed: int,
    shards: int,
    max_questions: int | None,
    data_seed: int,
    scale: float,
) -> dict[str, object]:
    dataset = load_dataset(dataset_name, seed=data_seed, scale=scale)
    config = BatcherConfig(seed=seed, max_questions=max_questions)

    oracle, unsharded_seconds = _timed(lambda: BatchER(config).run(dataset))
    total_calls = oracle.cost.num_llm_calls
    print(
        f"unsharded  {unsharded_seconds:6.2f}s  {total_calls} LLM calls  "
        f"f1={oracle.metrics.f1:.2f}",
        file=sys.stderr,
    )

    with tempfile.TemporaryDirectory() as tmp:
        with ConcurrentExecutor(shards) as executor:
            engine = RunEngine(
                config=config,
                executor=executor,
                num_shards=shards,
                checkpoint_dir=tmp,
            )
            sharded, sharded_seconds = _timed(lambda: engine.run(dataset))
        _assert_identical(sharded, oracle, f"sharded x{shards}")
        sharded_report = engine.last_report.to_dict()
    print(
        f"sharded    {sharded_seconds:6.2f}s  shards={shards}  "
        f"sizes={sharded_report['shard_sizes']}",
        file=sys.stderr,
    )

    # Crash mid-flight, then resume from the checkpoints.
    crash_at = max(1, total_calls // 2)
    with tempfile.TemporaryDirectory() as tmp:
        llm = CrashingLLM(
            create_llm(config.model, seed=config.seed, temperature=config.temperature),
            fail_at_call=crash_at,
        )
        engine = RunEngine(config=config, llm=llm, num_shards=shards, checkpoint_dir=tmp)
        crashed = False
        try:
            engine.run(dataset)
        except InjectedFault:
            crashed = True
        if not crashed:
            raise AssertionError("the injected fault did not fire")
        calls_before_resume = llm.successful_calls
        resumed, resume_seconds = _timed(lambda: engine.run(dataset))
        _assert_identical(resumed, oracle, "crash+resume")
        repeated_calls = llm.successful_calls - total_calls
        if repeated_calls != 0:
            raise AssertionError(
                f"resume repeated {repeated_calls} LLM calls; the checkpoint "
                "contract is zero"
            )
        resume_report = engine.last_report.to_dict()
    print(
        f"crash@{crash_at} + resume  {resume_seconds:6.2f}s  "
        f"checkpointed={calls_before_resume}  repeated=0",
        file=sys.stderr,
    )

    return {
        "workload": {
            "dataset": dataset_name,
            "data_seed": data_seed,
            "scale": scale,
            "seed": seed,
            "max_questions": max_questions,
            "questions": oracle.num_questions,
            "batches": oracle.num_batches,
        },
        "unsharded": {
            "seconds": round(unsharded_seconds, 4),
            "llm_calls": total_calls,
            "f1": round(oracle.metrics.f1, 2),
        },
        "sharded": {
            "seconds": round(sharded_seconds, 4),
            "report": sharded_report,
            "identical_to_unsharded": True,
        },
        "crash_resume": {
            "crash_at_call": crash_at,
            "calls_checkpointed_before_resume": calls_before_resume,
            "resume_seconds": round(resume_seconds, 4),
            "repeated_calls_after_resume": repeated_calls,
            "report": resume_report,
            "identical_to_unsharded": True,
        },
        "headline": {
            "shards": shards,
            "llm_calls": total_calls,
            "identical": True,
            "repeated_calls_after_resume": repeated_calls,
            "unsharded_seconds": round(unsharded_seconds, 4),
            "sharded_seconds": round(sharded_seconds, 4),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="beer")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--data-seed", type=int, default=7)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--max-questions", type=int, default=None, help="cap on evaluated questions"
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny run for the CI smoke invocation (the identity and "
        "zero-repeat oracles still assert)",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    max_questions = 32 if args.small and args.max_questions is None else args.max_questions
    report = run_engine_bench(
        dataset_name=args.dataset,
        seed=args.seed,
        shards=args.shards,
        max_questions=max_questions,
        data_seed=args.data_seed,
        scale=args.scale,
    )
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
