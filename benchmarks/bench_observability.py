"""Benchmark: observability overhead — traced vs no-op pipeline runs.

The tracing layer promises two things this benchmark holds it to:

1. **identity** — a :class:`~repro.core.batcher.BatchER` run with a live
   :class:`~repro.observability.tracing.Tracer` (spans persisted through a
   :class:`~repro.observability.export.JsonlTraceSink`) returns results
   byte-identical to the untraced run: instrumentation observes, never
   alters;
2. **near-zero disabled cost** — the default :data:`~repro.observability.
   tracing.NOOP_TRACER` adds no measurable work to the hot path.  A
   microbenchmark times the no-op span against an empty loop, and the
   end-to-end arms compare full-pipeline wall clock with tracing off vs on.

The wall-clock overhead floor (``--max-overhead-pct``, default 5) is for
manual/release invocations; the CI smoke run passes ``--max-overhead-pct 0``
to disable it (timing assertions on shared runners are load-dependent) while
the identity and trace-shape oracles always assert.

Like the other benchmarks, the run emits ``BENCH_observability.json`` in the
repository root with the headline numbers; the file is a machine-local
artifact (gitignored), not a tracked result.

Standalone (the CI smoke invocation uses ``--small --max-overhead-pct 0``)::

    PYTHONPATH=src python benchmarks/bench_observability.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.observability import JsonlTraceSink, NOOP_TRACER, Tracer, read_trace_file

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

#: Workload of the full run.
DEFAULT_MAX_QUESTIONS = 64
DEFAULT_REPEATS = 9

#: Workload of the CI smoke run.
SMALL_MAX_QUESTIONS = 16
SMALL_REPEATS = 3

#: Iterations of the no-op span microbenchmark.
NOOP_SPAN_ITERATIONS = 200_000


def timed_run(config: BatcherConfig, dataset, tracer: Tracer | None):
    """One full pipeline run; returns (RunResult, seconds)."""
    batcher = BatchER(config, tracer=tracer)
    started = time.perf_counter()
    result = batcher.run(dataset)
    return result, time.perf_counter() - started


def best_of_interleaved(repeats: int, baseline_run, traced_run):
    """Minimum wall clock per arm over ``repeats`` alternating runs.

    The arms alternate (off, on, off, on, ...) so slow drift in machine load
    hits both equally, and the minimum is a noise-resistant floor; a purely
    sequential A…A B…B layout would attribute any mid-benchmark load change
    entirely to one arm.
    """
    baseline_run()  # warm-up: first-run caches belong to neither arm
    baseline_result = baseline_best = None
    traced_result = traced_best = None
    for _ in range(repeats):
        result, seconds = baseline_run()
        if baseline_result is None:
            baseline_result, baseline_best = result, seconds
        elif result != baseline_result:
            raise AssertionError("repeated runs diverged; the workload is not fixed-seed")
        baseline_best = min(baseline_best, seconds)
        result, seconds = traced_run()
        if traced_result is None:
            traced_result, traced_best = result, seconds
        elif result != traced_result:
            raise AssertionError("repeated runs diverged; the workload is not fixed-seed")
        traced_best = min(traced_best, seconds)
    return (baseline_result, baseline_best), (traced_result, traced_best)


def noop_span_nanoseconds() -> dict[str, float]:
    """Cost of one disabled span vs an empty loop iteration, in nanoseconds."""
    span = NOOP_TRACER.span  # the hot-path call shape

    started = time.perf_counter()
    for _ in range(NOOP_SPAN_ITERATIONS):
        pass
    empty = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(NOOP_SPAN_ITERATIONS):
        with span("op"):
            pass
    traced = time.perf_counter() - started

    per_span = max(0.0, traced - empty) / NOOP_SPAN_ITERATIONS * 1e9
    return {
        "iterations": NOOP_SPAN_ITERATIONS,
        "empty_loop_seconds": round(empty, 6),
        "noop_span_seconds": round(traced, 6),
        "nanoseconds_per_noop_span": round(per_span, 1),
    }


def check_trace_shape(trace_path: Path) -> dict[str, object]:
    """Assert the persisted trace parses and its spans nest under one root."""
    spans = read_trace_file(trace_path)
    if not spans:
        raise AssertionError("traced run persisted no spans")
    roots = [span for span in spans if span["parent"] is None]
    if [root["name"] for root in roots] != ["batcher:run"]:
        raise AssertionError(f"expected one batcher:run root, got {roots}")
    by_id = {span["span"] for span in spans}
    orphans = [
        span["name"]
        for span in spans
        if span["parent"] is not None and span["parent"] not in by_id
    ]
    if orphans:
        raise AssertionError(f"spans with missing parents: {orphans}")
    stages = [span["name"] for span in spans if str(span["name"]).startswith("stage:")]
    if not stages:
        raise AssertionError("no pipeline stage spans in the trace")
    return {"spans": len(spans), "stage_spans": len(stages), "roots": len(roots)}


def run_bench(max_questions: int, repeats: int, max_overhead_pct: float) -> dict[str, object]:
    dataset = load_dataset("beer", seed=7, scale=1.0)
    config = BatcherConfig(seed=1, max_questions=max_questions)

    with tempfile.TemporaryDirectory() as scratch:
        trace_path = Path(scratch) / "bench-trace.jsonl"

        def traced_run():
            # The sink appends by design; each repeat gets a fresh file so the
            # shape check sees exactly one run's spans.
            trace_path.unlink(missing_ok=True)
            with JsonlTraceSink(trace_path) as sink:
                return timed_run(config, dataset, tracer=Tracer(sink=sink))

        (baseline_result, baseline_seconds), (traced_result, traced_seconds) = (
            best_of_interleaved(
                repeats, lambda: timed_run(config, dataset, tracer=None), traced_run
            )
        )
        shape = check_trace_shape(trace_path)
    print(f"tracing off  {baseline_seconds * 1000:8.1f}ms", file=sys.stderr)
    print(
        f"tracing on   {traced_seconds * 1000:8.1f}ms  "
        f"({shape['spans']} spans per run appended to the JSONL sink)",
        file=sys.stderr,
    )

    if traced_result != baseline_result:
        raise AssertionError("traced run diverges from the untraced run")

    overhead_pct = (traced_seconds - baseline_seconds) / baseline_seconds * 100.0
    print(f"overhead     {overhead_pct:+8.1f}%", file=sys.stderr)
    if max_overhead_pct > 0 and overhead_pct > max_overhead_pct:
        raise AssertionError(
            f"tracing overhead {overhead_pct:.1f}% exceeds the "
            f"--max-overhead-pct floor {max_overhead_pct}%"
        )

    noop = noop_span_nanoseconds()
    print(
        f"no-op span   {noop['nanoseconds_per_noop_span']:8.1f}ns per span",
        file=sys.stderr,
    )

    return {
        "workload": {
            "dataset": "beer",
            "max_questions": max_questions,
            "repeats": repeats,
            "engine": "simulated",
        },
        "baseline": {"seconds": round(baseline_seconds, 4)},
        "traced": {"seconds": round(traced_seconds, 4), **shape},
        "noop_span": noop,
        "headline": {
            "overhead_pct": round(overhead_pct, 2),
            "nanoseconds_per_noop_span": noop["nanoseconds_per_noop_span"],
            "identical_results": True,
            "spans_per_run": shape["spans"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-questions", type=int, default=None, help="questions evaluated per run"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="runs per arm (minimum is reported)"
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="fail if live tracing slows the pipeline by more than this many "
        "percent (0 disables the timing floor; the identity and trace-shape "
        "oracles always assert)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny run for the CI smoke invocation (oracles still assert)",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    max_questions = args.max_questions or (
        SMALL_MAX_QUESTIONS if args.small else DEFAULT_MAX_QUESTIONS
    )
    repeats = args.repeats or (SMALL_REPEATS if args.small else DEFAULT_REPEATS)
    report = run_bench(max_questions, repeats, args.max_overhead_pct)
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
