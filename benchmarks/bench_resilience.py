"""Benchmark: resilience chaos harness — scripted outages on virtual time.

Every arm runs on a :class:`~repro.engines.faults.FakeClock`, so "latency"
is *virtual* seconds consumed per logical request (backoff sleeps, stalls),
the whole harness finishes in milliseconds of real time, and every oracle is
deterministic.  Four scripted outage scenarios:

1. **dead backend** — a backend that never answers.  Without the breaker
   every request pays the full retry ladder; with it, the first request
   trips the breaker and everything after fast-fails.  Oracle: p50 virtual
   latency with the breaker open is below 1% of the full-ladder baseline.
2. **flapping backend** — dead for a scripted window, then healthy.  Oracle:
   the first request *admitted* after the backend recovers is a half-open
   probe that succeeds and closes the breaker — recovery within one probe
   cycle, no thundering herd.
3. **slow-but-alive stall** — the backend eats the per-attempt socket
   timeout and fails with ``retry_reason="timeout"``.  Oracle: a deadline
   budget caps each logical request near the budget (budget + at most one
   in-flight attempt) instead of the full ladder, and the typed
   :class:`~repro.resilience.DeadlineExceeded` chains to the timeout error.
4. **healthy backend parity** — the breaker must be pure overhead-free
   observation when nothing fails.  Oracle: breaker-on and breaker-off
   :class:`~repro.core.batcher.RunResult` objects are byte-identical and the
   breaker records zero trips and zero fast failures.

The report lands in ``BENCH_resilience.json`` at the repository root; unlike
the timing benchmarks this one is *tracked* — its numbers are virtual-time
facts, not machine-local measurements.

Standalone (the CI smoke invocation uses ``--small``)::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.engine import RunEngine
from repro.engines import FakeClock, SimulatedBackendTransport, create_engine
from repro.engines.transport import (
    RetryPolicy,
    RetryableTransportError,
    RetryingTransport,
    Transport,
    TransportRequest,
    TransportResponse,
    error_for_status,
    retry_reason,
)
from repro.llm.simulated import SimulatedLLM
from repro.resilience import (
    STATE_CLOSED,
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    DeadlineExceeded,
    deadline_scope,
)

#: Where the headline numbers land (repository root, tracked).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: Requests driven through the dead-backend arm.
DEFAULT_DEAD_REQUESTS = 50
SMALL_DEAD_REQUESTS = 20

#: Questions evaluated by the healthy-parity arm.
DEFAULT_MAX_QUESTIONS = 48
SMALL_MAX_QUESTIONS = 16

REQUEST = TransportRequest(url="https://api.bench/v1/x", payload={"q": "bench"})

#: Deterministic ladder: delays 1, 2, 4, 8, 16 between six attempts.
POLICY = RetryPolicy(
    max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=60.0, jitter=0.0
)


class WindowedOutageTransport(Transport):
    """Healthy except during a scripted ``[start, end)`` outage window.

    During the outage, sends fail immediately with a retryable 503 (the
    backend is *dead*); outside it they return an OK payload.
    """

    def __init__(self, clock: FakeClock, outage: tuple[float, float]) -> None:
        self.clock = clock
        self.outage = outage
        self.calls = 0

    def send(self, request: TransportRequest) -> TransportResponse:
        self.calls += 1
        start, end = self.outage
        if start <= self.clock.monotonic() < end:
            raise error_for_status(503, "backend down for maintenance window")
        return TransportResponse(status=200, payload={"ok": True})


class StallingTransport(Transport):
    """Slow-but-alive: every send eats ``stall_seconds`` then times out."""

    def __init__(self, clock: FakeClock, stall_seconds: float) -> None:
        self.clock = clock
        self.stall_seconds = stall_seconds
        self.calls = 0

    def send(self, request: TransportRequest) -> TransportResponse:
        self.calls += 1
        self.clock.advance(self.stall_seconds)
        raise RetryableTransportError(
            f"timeout after {self.stall_seconds}s of silence", reason="timeout"
        )


def _timed_sends(transport: RetryingTransport, clock: FakeClock, count: int):
    """Virtual seconds consumed by each of ``count`` sends (failures included)."""
    latencies = []
    for _ in range(count):
        started = clock.monotonic()
        try:
            transport.send(REQUEST)
        except (CircuitOpenError, DeadlineExceeded, RetryableTransportError):
            pass
        latencies.append(clock.monotonic() - started)
    return latencies


def dead_backend_arm(requests: int) -> dict[str, object]:
    """Arm 1: fast-fail economics against a backend that never answers."""
    forever = (0.0, float("inf"))

    baseline_clock = FakeClock()
    baseline = RetryingTransport(
        WindowedOutageTransport(baseline_clock, forever),
        policy=POLICY,
        clock=baseline_clock,
    )
    baseline_latencies = _timed_sends(baseline, baseline_clock, requests)

    breaker_clock = FakeClock()
    # Long cooldown: the arm measures steady-state open behaviour, so the
    # breaker must not slip to half-open mid-measurement (fast-fails consume
    # zero virtual time, so only the first request's backoff advances time).
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=5, cooldown_seconds=10_000.0),
        clock=breaker_clock,
        name="dead-backend",
    )
    gated = RetryingTransport(
        WindowedOutageTransport(breaker_clock, forever),
        policy=POLICY,
        clock=breaker_clock,
        breaker=breaker,
    )
    gated_latencies = _timed_sends(gated, breaker_clock, requests)

    p50_baseline = statistics.median(baseline_latencies)
    p50_gated = statistics.median(gated_latencies)
    if p50_baseline <= 0:
        raise AssertionError("dead-backend baseline paid no backoff; harness broken")
    ratio = p50_gated / p50_baseline
    if ratio >= 0.01:
        raise AssertionError(
            f"breaker-open p50 {p50_gated:.3f}s is {ratio:.1%} of the "
            f"full-ladder baseline {p50_baseline:.3f}s; expected < 1%"
        )
    if breaker.fast_failures < requests - 1:
        raise AssertionError(
            f"expected >= {requests - 1} fast-fails, got {breaker.fast_failures}"
        )
    return {
        "requests": requests,
        "p50_full_ladder_seconds": round(p50_baseline, 3),
        "p50_breaker_open_seconds": round(p50_gated, 6),
        "latency_ratio": round(ratio, 6),
        "backend_sends_baseline": baseline.inner.calls,
        "backend_sends_gated": gated.inner.calls,
        "fast_failures": breaker.fast_failures,
    }


def flapping_backend_arm() -> dict[str, object]:
    """Arm 2: a scripted outage window ends; one probe cycle must recover."""
    clock = FakeClock()
    outage_end = 40.0
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=3, cooldown_seconds=10.0),
        clock=clock,
        name="flapping-backend",
    )
    transport = RetryingTransport(
        WindowedOutageTransport(clock, (0.0, outage_end)),
        policy=POLICY,
        clock=clock,
        breaker=breaker,
    )
    admitted_after_recovery = 0
    recovered_at = None
    for _ in range(64):
        sends_before = transport.inner.calls
        started = clock.monotonic()
        try:
            transport.send(REQUEST)
            success = True
        except (CircuitOpenError, RetryableTransportError):
            success = False
        admitted = transport.inner.calls > sends_before
        # Classify by when the request *started*: a probe launched into the
        # tail of the outage (whose backoff then crosses the boundary) still
        # belongs to the outage, not to the recovery.
        if started >= outage_end and admitted:
            admitted_after_recovery += 1
            if success:
                recovered_at = clock.monotonic()
                break
        clock.advance(5.0)  # request inter-arrival time
    if recovered_at is None:
        raise AssertionError("breaker never recovered after the outage window")
    if admitted_after_recovery != 1:
        raise AssertionError(
            f"recovery took {admitted_after_recovery} admitted requests; "
            "expected the first half-open probe to close the breaker"
        )
    if breaker.state != STATE_CLOSED:
        raise AssertionError(f"breaker ended {breaker.state!r}, expected closed")
    return {
        "outage_window_seconds": outage_end,
        "recovered_at_virtual_seconds": round(recovered_at, 3),
        "admitted_requests_to_recover": admitted_after_recovery,
        "trips": breaker.trips,
        "final_state": breaker.state,
    }


def slow_stall_arm() -> dict[str, object]:
    """Arm 3: deadline budgets cap a stalling backend's latency bleed."""
    stall, budget = 20.0, 45.0

    baseline_clock = FakeClock()
    baseline = RetryingTransport(
        StallingTransport(baseline_clock, stall), policy=POLICY, clock=baseline_clock
    )
    [baseline_latency] = _timed_sends(baseline, baseline_clock, 1)

    clock = FakeClock()
    transport = RetryingTransport(
        StallingTransport(clock, stall), policy=POLICY, clock=clock
    )
    started = clock.monotonic()
    error: Exception | None = None
    with deadline_scope(DeadlineBudget(budget, clock=clock)):
        try:
            transport.send(REQUEST)
        except DeadlineExceeded as caught:
            error = caught
    capped_latency = clock.monotonic() - started

    if error is None:
        raise AssertionError("stalling backend did not trip the deadline budget")
    cause = error.__cause__
    if not isinstance(cause, RetryableTransportError) or retry_reason(cause) != "timeout":
        raise AssertionError(
            f"deadline error should chain to a timeout-reason transport error, "
            f"got {cause!r}"
        )
    # The budget gates attempt starts and backoff sleeps; one in-flight
    # attempt may still run to its own socket timeout, hence the + stall.
    if capped_latency > budget + stall:
        raise AssertionError(
            f"deadline-capped latency {capped_latency:.1f}s exceeds "
            f"budget {budget}s + one attempt stall {stall}s"
        )
    if capped_latency >= baseline_latency:
        raise AssertionError("deadline budget saved no time over the full ladder")
    return {
        "stall_seconds": stall,
        "budget_seconds": budget,
        "full_ladder_seconds": round(baseline_latency, 3),
        "deadline_capped_seconds": round(capped_latency, 3),
        "attempts_baseline": baseline.inner.calls,
        "attempts_capped": transport.inner.calls,
        "cause_retry_reason": retry_reason(cause),
    }


def healthy_parity_arm(max_questions: int) -> dict[str, object]:
    """Arm 4: on a healthy backend the breaker must change nothing."""
    dataset = load_dataset("beer", seed=7, scale=1.0)
    config = BatcherConfig(seed=1, max_questions=max_questions)

    def run(breaker: CircuitBreaker | None):
        engine = create_engine(
            "openai",
            transport=SimulatedBackendTransport(
                SimulatedLLM(model_name=config.model, seed=config.seed)
            ),
            clock=FakeClock(),
            breaker=breaker,
            api_key="bench-key",
            seed=config.seed,
        )
        return RunEngine(config=config, llm=engine).run(dataset)

    breaker = CircuitBreaker(BreakerConfig(), clock=FakeClock(), name="healthy")
    gated_result = run(breaker)
    plain_result = run(None)
    if gated_result != plain_result:
        raise AssertionError("breaker-on run diverges from breaker-off run")
    if breaker.trips != 0 or breaker.fast_failures != 0:
        raise AssertionError(
            f"healthy backend moved the breaker: trips={breaker.trips}, "
            f"fast_failures={breaker.fast_failures}"
        )
    if breaker.state != STATE_CLOSED:
        raise AssertionError(f"breaker ended {breaker.state!r} on a healthy backend")
    return {
        "max_questions": max_questions,
        "identical_run_results": True,
        "llm_calls": plain_result.cost.num_llm_calls,
        "breaker_trips": 0,
        "breaker_fast_failures": 0,
    }


def run_bench(dead_requests: int, max_questions: int) -> dict[str, object]:
    dead = dead_backend_arm(dead_requests)
    print(
        f"dead backend    p50 {dead['p50_full_ladder_seconds']:7.1f}s -> "
        f"{dead['p50_breaker_open_seconds']:.3f}s virtual "
        f"(ratio {dead['latency_ratio']:.4%})",
        file=sys.stderr,
    )
    flapping = flapping_backend_arm()
    print(
        f"flapping        recovered in {flapping['admitted_requests_to_recover']} "
        f"probe at t={flapping['recovered_at_virtual_seconds']}s",
        file=sys.stderr,
    )
    stall = slow_stall_arm()
    print(
        f"slow stall      {stall['full_ladder_seconds']:7.1f}s -> "
        f"{stall['deadline_capped_seconds']:.1f}s virtual under the budget",
        file=sys.stderr,
    )
    parity = healthy_parity_arm(max_questions)
    print(
        f"healthy parity  identical results over {parity['llm_calls']} LLM calls",
        file=sys.stderr,
    )
    return {
        "workload": {
            "dataset": "beer",
            "dead_requests": dead_requests,
            "max_questions": max_questions,
            "clock": "virtual (FakeClock; zero real sleeps)",
        },
        "dead_backend": dead,
        "flapping_backend": flapping,
        "slow_stall": stall,
        "healthy_parity": parity,
        "headline": {
            "breaker_open_latency_ratio": dead["latency_ratio"],
            "recovery_probe_cycles": flapping["admitted_requests_to_recover"],
            "deadline_capped_seconds": stall["deadline_capped_seconds"],
            "healthy_results_identical": parity["identical_run_results"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dead-requests",
        type=int,
        default=None,
        help="requests driven through the dead-backend arm",
    )
    parser.add_argument(
        "--max-questions",
        type=int,
        default=None,
        help="questions evaluated by the healthy-parity arm",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny run for the CI smoke invocation (oracles still assert)",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    dead_requests = args.dead_requests or (
        SMALL_DEAD_REQUESTS if args.small else DEFAULT_DEAD_REQUESTS
    )
    max_questions = args.max_questions or (
        SMALL_MAX_QUESTIONS if args.small else DEFAULT_MAX_QUESTIONS
    )
    report = run_bench(dead_requests, max_questions)
    args.report.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))


if __name__ == "__main__":
    main()
