"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints the
resulting rows (the same rows/series the paper reports), while pytest-benchmark
records the wall-clock time of the underlying experiment run.

The default settings use heavily scaled-down datasets so that the whole harness
finishes in minutes.  Set ``REPRO_BENCH_SCALE=1.0`` and
``REPRO_BENCH_MAX_QUESTIONS=none`` to run at the paper's Table II scale
(slow — hours, exactly like the original evaluation).
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.report import format_table
from repro.experiments.settings import ExperimentSettings

#: Default dataset scale for benchmarks (3% of Table II sizes).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
_max_questions_raw = os.environ.get("REPRO_BENCH_MAX_QUESTIONS", "96")
BENCH_MAX_QUESTIONS = (
    None if _max_questions_raw.lower() in ("none", "0") else int(_max_questions_raw)
)


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by all benchmarks."""
    return ExperimentSettings(
        scale=BENCH_SCALE,
        max_questions=BENCH_MAX_QUESTIONS,
        seeds=(1, 2),
    )


def print_rows(title: str, rows: list[dict[str, object]]) -> None:
    """Print a paper-style table below the benchmark output."""
    print(f"\n\n=== {title} ===")
    print(format_table(rows))
    print()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (experiments are too heavy to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
