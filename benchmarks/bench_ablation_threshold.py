"""Benchmark: ablation over the covering distance threshold percentile."""

from conftest import print_rows, run_once

from repro.experiments.ablation import run_threshold_ablation


def test_ablation_covering_threshold(benchmark, bench_settings):
    rows = run_once(benchmark, run_threshold_ablation, bench_settings)
    assert len(rows) >= 3

    # Shape check: a tighter covering radius (smaller percentile) labels at
    # least as many demonstrations as a looser one.
    ordered = sorted(rows, key=lambda row: row["Threshold percentile"])
    assert ordered[0]["Labeled demos"] >= ordered[-1]["Labeled demos"]

    print_rows("Ablation — covering threshold percentile (WA)", rows)
