"""Benchmark: Exp-5, Table VI — different underlying LLMs."""

from conftest import print_rows, run_once

from repro.experiments.exp5_llms import run_exp5_llms


def test_table6_underlying_llms(benchmark, bench_settings):
    rows = run_once(benchmark, run_exp5_llms, bench_settings)
    assert len(rows) == len(bench_settings.datasets)

    # Shape check (paper Finding 5): GPT-4's API cost is roughly 10x GPT-3.5's,
    # and GPT-4 / GPT-3.5-03 dominate GPT-3.5-06 on accuracy overall.
    for row in rows:
        assert row["gpt-4 API ($)"] >= 5.0 * row["gpt-3.5-03 API ($)"]
    mean = lambda key: sum(row[key] for row in rows) / len(rows)
    assert mean("gpt-3.5-03 F1") >= mean("gpt-3.5-06 F1") - 2.0
    assert mean("gpt-4 F1") >= mean("gpt-3.5-06 F1") - 2.0

    print_rows("Table VI — Underlying LLMs", rows)
