"""Benchmark: micro-batched serving vs. per-pair serial resolution.

The service's amortization claim, measured: a stream of concurrent requests
resolved through the micro-batching :class:`ResolutionService` must beat a
per-pair serial baseline (one LLM call per pair, the standard-prompting
serving shape) on both LLM calls and pairs/second, and a repeated request set
must be served from the result cache at zero new LLM calls.

Besides the pytest-benchmark timing, the run emits ``BENCH_service.json`` in
the repository root with the headline numbers (batched-vs-serial pairs/sec and
the cache-hit speedup).  The file is a machine-local artifact (gitignored),
not a tracked result.
"""

import json
import time
from pathlib import Path

from repro.core.config import BatcherConfig
from repro.pipeline import Resolver
from repro.service import ResolutionService, ServiceConfig

from conftest import run_once

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


#: Workload size: a multiple of the service's max_batch_size, so the final
#: micro-batch is full and never waits out the flush deadline.
NUM_PAIRS = 80

#: Pairs per micro-batch flush (NUM_PAIRS / MAX_BATCH_SIZE exact flushes).
MAX_BATCH_SIZE = 16


def _questions(bench_settings):
    dataset = bench_settings.load("beer")
    questions = [pair.without_label() for pair in dataset.splits.test][:NUM_PAIRS]
    return dataset, questions


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_service_throughput_vs_serial(benchmark, bench_settings):
    dataset, questions = _questions(bench_settings)
    config = BatcherConfig(seed=1)

    def compare():
        # Serial per-pair baseline: standard prompting (paper Figure 1a) —
        # one LLM call per pair, each prompt carrying the question plus its
        # own K selected demonstrations.  This is the token load batch
        # prompting amortizes.
        serial_resolver = Resolver.from_dataset(
            dataset, config.with_overrides(selection="topk-question")
        )
        serial_resolver.warm()
        serial, serial_seconds = _timed(
            lambda: list(serial_resolver.resolve_iter(iter(questions), chunk_size=1))
        )

        # Micro-batched service: the whole stream submitted up front (the
        # deterministic serving shape), then drained by the consumer.  Warm
        # the session before timing, matching the warmed serial baseline.
        service = ResolutionService.from_dataset(
            dataset,
            ServiceConfig(
                batcher=config, max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=0.05
            ),
        )
        service.resolver.warm()
        futures = [service.submit(pair) for pair in questions]

        def drain():
            service.start()
            return [future.result(timeout=120.0) for future in futures]

        batched, batched_seconds = _timed(drain)

        # Cache pass: the identical request set again, zero new LLM calls.
        calls_before_repeat = service.stats().llm_calls
        repeat, cache_seconds = _timed(lambda: service.resolve_many(questions))
        stats = service.stats()
        service.stop()

        count = len(questions)
        report = {
            "dataset": dataset.name,
            "pairs": count,
            "serial": {
                "seconds": serial_seconds,
                "pairs_per_sec": count / serial_seconds,
                "llm_calls": serial_resolver.usage.num_calls,
            },
            "batched": {
                "seconds": batched_seconds,
                "pairs_per_sec": count / batched_seconds,
                "llm_calls": calls_before_repeat,
                "speedup_vs_serial": serial_seconds / batched_seconds,
            },
            "cache_repeat": {
                "seconds": cache_seconds,
                "pairs_per_sec": count / cache_seconds,
                "new_llm_calls": stats.llm_calls - calls_before_repeat,
                "speedup_vs_serial": serial_seconds / cache_seconds,
            },
            "cache_hit_rate": stats.cache_hit_rate,
        }
        assert len(serial) == len(batched) == len(repeat) == count
        return report

    report = run_once(benchmark, compare)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n\n=== service throughput (written to {REPORT_PATH.name}) ===")
    print(json.dumps(report, indent=2))

    # The amortization acceptance bar: batched serving issues far fewer LLM
    # calls and is at least twice as fast as the per-pair serial baseline;
    # the cache pass adds zero LLM calls and is faster still.
    assert report["batched"]["llm_calls"] < report["serial"]["llm_calls"]
    assert report["batched"]["speedup_vs_serial"] >= 2.0
    assert report["cache_repeat"]["new_llm_calls"] == 0
    assert report["cache_repeat"]["speedup_vs_serial"] > report["batched"]["speedup_vs_serial"]
