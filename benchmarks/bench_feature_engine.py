"""Benchmark: scalar featurization vs. the columnar feature engine.

Two workload shapes, matching how featurization is actually paid for:

* **one-shot** — featurize a set of unique pairs once (the ``BatchER.run``
  shape): scalar per-pair ``extract`` loop vs. the columnar ``extract_matrix``
  (cold) vs. a warmed :class:`~repro.features.engine.FeatureStore` (every
  vector memoized).
* **streaming** — a request stream with hot-pair repetition drained in
  micro-batch flushes (the service shape): the pre-refactor baseline
  re-featurizes every flush from scratch with scalar ``extract`` calls, the
  engine featurizes through one shared content-addressed store.

Besides the optional pytest-benchmark timing, the run emits
``BENCH_features.json`` in the repository root with the headline speedups.
The file is a machine-local artifact (gitignored), not a tracked result.

Standalone (the CI smoke invocation)::

    PYTHONPATH=src python benchmarks/bench_feature_engine.py
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.registry import load_dataset
from repro.features import create_feature_extractor, create_feature_store
from repro.features.factory import EXTRACTOR_VARIANTS

#: Where the headline numbers land (repository root).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_features.json"

#: Unique pair contents in the streaming workload ("hot" catalog slice).
NUM_UNIQUE = 160

#: Flushes in the streaming workload (requests drawn with replacement).
NUM_FLUSHES = 12

#: Requests per flush.
FLUSH_SIZE = 96

#: The extractor whose streaming speedup is the report's headline number.
HEADLINE_VARIANT = "lr"


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _scalar_matrix(extractor, pairs):
    return np.vstack([extractor.extract(pair) for pair in pairs])


def build_workload(seed: int = 11):
    """The benchmark workload: unique pairs + a hot streaming request trace."""
    dataset = load_dataset("beer", seed=7)
    unique = list(dataset.candidate_pairs)[:NUM_UNIQUE]
    rng = random.Random(seed)
    flushes = [
        [unique[rng.randrange(len(unique))] for _ in range(FLUSH_SIZE)]
        for _ in range(NUM_FLUSHES)
    ]
    return dataset, unique, flushes


def run_feature_engine_bench() -> dict[str, object]:
    """Measure every extractor variant and return the report dict."""
    dataset, unique, flushes = build_workload()
    variants: dict[str, dict[str, float]] = {}

    for variant in EXTRACTOR_VARIANTS:
        # One-shot: unique pairs, scalar loop vs cold columnar vs warm store.
        scalar_extractor = create_feature_extractor(variant, dataset.attributes)
        expected, scalar_once = _timed(lambda: _scalar_matrix(scalar_extractor, unique))
        columnar_extractor = create_feature_extractor(variant, dataset.attributes)
        columnar, columnar_cold = _timed(lambda: columnar_extractor.extract_matrix(unique))
        if not np.array_equal(columnar, expected):
            raise AssertionError(f"columnar path diverged from scalar oracle ({variant})")
        store = create_feature_store(variant, dataset.attributes)
        store.extract_matrix(unique)  # warm the store
        warmed, store_warm = _timed(lambda: store.extract_matrix(unique))
        if not np.array_equal(warmed, expected):
            raise AssertionError(f"warm store diverged from scalar oracle ({variant})")

        # Streaming: per-flush scalar re-featurization (the pre-refactor
        # shape: every consumer rebuilt its extractor and recomputed every
        # vector) vs one shared content-addressed store.
        def scalar_stream():
            for flush in flushes:
                extractor = create_feature_extractor(variant, dataset.attributes)
                _scalar_matrix(extractor, flush)

        def engine_stream():
            shared = create_feature_store(variant, dataset.attributes)
            for flush in flushes:
                shared.extract_matrix(flush)
            return shared

        _, scalar_streaming = _timed(scalar_stream)
        shared_store, engine_streaming = _timed(engine_stream)
        stats = shared_store.stats()

        variants[variant] = {
            "scalar_once_seconds": scalar_once,
            "columnar_cold_seconds": columnar_cold,
            "store_warm_seconds": store_warm,
            "warm_speedup": scalar_once / store_warm,
            "scalar_streaming_seconds": scalar_streaming,
            "engine_streaming_seconds": engine_streaming,
            "streaming_speedup": scalar_streaming / engine_streaming,
            "store_hit_rate": stats.hit_rate,
        }

    headline = variants[HEADLINE_VARIANT]
    return {
        "workload": {
            "dataset": "beer",
            "unique_pairs": len(unique),
            "flushes": NUM_FLUSHES,
            "requests": NUM_FLUSHES * FLUSH_SIZE,
        },
        "variants": variants,
        "headline_variant": HEADLINE_VARIANT,
        "columnar_speedup": headline["streaming_speedup"],
        "warm_store_speedup": headline["warm_speedup"],
    }


def write_report(report: dict[str, object]) -> None:
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_feature_engine_speedup(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_feature_engine_bench)
    write_report(report)
    print(f"\n\n=== feature engine ({REPORT_PATH.name}) ===")
    for variant, numbers in report["variants"].items():
        print(
            f"{variant}: streaming {numbers['streaming_speedup']:.1f}x, "
            f"warm store {numbers['warm_speedup']:.1f}x"
        )
    assert report["columnar_speedup"] >= 3.0
    assert report["warm_store_speedup"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Feature-engine speedup benchmark (emits BENCH_features.json)."
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail (exit 1) when the headline streaming speedup is below this",
    )
    args = parser.parse_args(argv)

    report = run_feature_engine_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
    ok = report["columnar_speedup"] >= args.min_speedup
    if not ok:
        print(
            f"FAIL: headline streaming speedup {report['columnar_speedup']:.2f}x "
            f"< {args.min_speedup}x",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
