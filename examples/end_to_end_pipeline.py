"""End-to-end ER pipeline: blocking -> batch prompting -> evaluation.

The paper treats blocking as a given upstream component.  This example shows
the full pipeline a practitioner would run on two raw tables:

1. generate two dirty product tables (Walmart-Amazon style),
2. run a token-overlap blocker over the raw tables and measure its pair recall
   and reduction ratio,
3. resolve the surviving candidate pairs with BatchER,
4. report accuracy and monetary cost.

Run with:  python examples/end_to_end_pipeline.py
"""

from repro import BatchER, BatcherConfig, load_dataset
from repro.blocking import TokenOverlapBlocker, evaluate_blocking


def main() -> None:
    dataset = load_dataset("wa", seed=7, scale=0.05)
    print(f"Tables: {len(dataset.table_a)} records (Walmart side), "
          f"{len(dataset.table_b)} records (Amazon side)")

    blocker = TokenOverlapBlocker(attributes=("title", "brand", "modelno"), min_overlap=2)
    blocking = blocker.block(dataset.table_a, dataset.table_b)
    quality = evaluate_blocking(blocking, dataset.candidate_pairs)
    print(
        f"Blocking kept {len(blocking.candidates)} of "
        f"{blocking.total_possible_pairs} possible pairs "
        f"(reduction ratio {quality['reduction_ratio']:.3f}, "
        f"pair recall {quality['pair_recall']:.3f})"
    )

    config = BatcherConfig(batching="diverse", selection="covering", seed=1)
    result = BatchER(config).run(dataset)
    print(
        f"\nBatchER on the labeled candidate set: F1 {result.metrics.f1:.2f} "
        f"(P {result.metrics.precision:.1f} / R {result.metrics.recall:.1f})"
    )
    print(
        f"Cost: API ${result.cost.api_cost:.3f} + labeling ${result.cost.labeling_cost:.3f} "
        f"for {result.cost.num_labeled_pairs} labeled demonstrations "
        f"over {result.cost.num_llm_calls} LLM calls"
    )


if __name__ == "__main__":
    main()
