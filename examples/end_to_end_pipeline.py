"""End-to-end ER pipeline: blocking -> streaming resolution -> evaluation.

The paper treats blocking as a given upstream component.  This example shows
the full serving pipeline a practitioner would run on two raw tables:

1. generate two dirty product tables (Walmart-Amazon style),
2. run a token-overlap blocker over the raw tables and measure its pair recall
   and reduction ratio,
3. stream the surviving candidate pairs through a :class:`repro.Resolver`
   session (persistent demonstration pool, concurrent LLM dispatch) — the
   candidates carry no gold labels, exactly like production traffic,
4. report accuracy against the hidden gold labels, plus monetary cost.

Run with:  python examples/end_to_end_pipeline.py
"""

from repro import BatcherConfig, ConcurrentExecutor, Resolver, load_dataset
from repro.blocking import TokenOverlapBlocker, evaluate_blocking
from repro.data.schema import MatchLabel
from repro.evaluation.metrics import evaluate_predictions


def main() -> None:
    dataset = load_dataset("wa", seed=7, scale=0.05)
    print(f"Tables: {len(dataset.table_a)} records (Walmart side), "
          f"{len(dataset.table_b)} records (Amazon side)")

    blocker = TokenOverlapBlocker(attributes=("title", "brand", "modelno"), min_overlap=2)
    blocking = blocker.block(dataset.table_a, dataset.table_b)
    quality = evaluate_blocking(blocking, dataset.candidate_pairs)
    print(
        f"Blocking kept {len(blocking.candidates)} of "
        f"{blocking.total_possible_pairs} possible pairs "
        f"(reduction ratio {quality['reduction_ratio']:.3f}, "
        f"pair recall {quality['pair_recall']:.3f})"
    )

    # Serve the labeled candidate set as an unlabeled stream: the resolver
    # only sees pair attributes, the gold labels stay hidden for scoring.
    config = BatcherConfig(batching="diverse", selection="covering", seed=1)
    resolver = Resolver.from_dataset(dataset, config, executor=ConcurrentExecutor(4))
    stream = [pair.without_label() for pair in dataset.splits.test]
    resolutions = list(resolver.resolve_iter(stream, chunk_size=64))

    gold = [pair.label for pair in dataset.splits.test]
    predicted = [resolution.label for resolution in resolutions]
    metrics = evaluate_predictions(gold, predicted)
    matches = sum(1 for label in predicted if label is MatchLabel.MATCH)
    print(
        f"\nResolver session on the candidate stream: {len(resolutions)} pairs, "
        f"{matches} predicted matches — F1 {metrics.f1:.2f} "
        f"(P {metrics.precision:.1f} / R {metrics.recall:.1f})"
    )
    cost = resolver.cost()
    print(
        f"Cost: API ${cost.api_cost:.3f} + labeling ${cost.labeling_cost:.3f} "
        f"for {resolver.num_labeled} labeled demonstrations "
        f"over {resolver.usage.num_calls} LLM calls"
    )


if __name__ == "__main__":
    main()
