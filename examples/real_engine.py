"""Real LLM backends: pick an engine, keep the whole framework unchanged.

The :mod:`repro.engines` registry makes the LLM backend a configuration
knob: the same ``BatcherConfig`` / ``BatchER`` / ``Resolver`` code runs
against the hermetic simulated model (default), OpenAI, any OpenAI-compatible
server (vLLM, llama.cpp, LM Studio, ...) or Anthropic.  This example shows
all of it offline — the "real" engine talks to an in-process fake provider —
and prints the exact environment you would set to point it at a live API.

Run with:  python examples/real_engine.py
"""

import os

from repro import BatchER, BatcherConfig, load_dataset
from repro.engines import (
    SimulatedBackendTransport,
    available_engines,
    create_engine,
    engine_config_from_env,
)
from repro.llm.executors import AsyncExecutor
from repro.llm.simulated import SimulatedLLM


def main() -> None:
    print(f"Registered engines: {', '.join(available_engines())}\n")

    # 1. The default: everything below runs on the simulated engine.  The
    #    `engine` config field is all that ever needs to change.
    dataset = load_dataset("beer", seed=7)
    config = BatcherConfig(seed=1, max_questions=48, engine="simulated")
    result = BatchER(config).run(dataset)
    print(f"engine=simulated   f1={result.metrics.f1:.1f}  api=${result.cost.api_cost:.3f}")

    # 2. Environment-driven selection: REPRO_ENGINE picks the backend and the
    #    REPRO_ENGINE_* variables tune it.  Against a real provider you would
    #    export these in your shell instead of building the dict here.
    env = {
        "REPRO_ENGINE": "openai_compatible",
        "REPRO_ENGINE_BASE_URL": "http://localhost:8000/v1",
        "REPRO_ENGINE_MODEL": "llama-3.1-8b-instruct",
        "REPRO_ENGINE_RPS": "8",
        "REPRO_ENGINE_TPM": "200000",
    }
    engine_config = engine_config_from_env(env=env)
    print(
        f"\nengine_config_from_env -> {type(engine_config).__name__} "
        f"(base_url={engine_config.base_url}, provider_model={engine_config.provider_model}, "
        f"rps={engine_config.requests_per_second}, tpm={engine_config.tokens_per_minute})"
    )

    # 3. An HTTP engine end to end — hermetically.  The OpenAI-dialect engine
    #    sends real chat-completion payloads through its retry/rate-limit
    #    stack; the transport is an in-process fake provider backed by the
    #    simulated model, so this runs offline.  Swap the transport for the
    #    default (omit it) plus OPENAI_API_KEY and the same code hits the API.
    backend = SimulatedBackendTransport(SimulatedLLM(model_name="gpt-3.5-03", seed=0))
    engine = create_engine(
        "openai",
        transport=backend,
        api_key=os.environ.get("OPENAI_API_KEY", "offline-demo-key"),
        requests_per_second=50.0,
    )
    prompts = [
        f"Q1: do 'record {i}' and 'record {i}' refer to the same entity? "
        "Answer 'A1: Yes' or 'A1: No'." for i in range(12)
    ]
    # Async dispatch: many requests in flight on one event loop.
    responses = engine.complete_many(prompts, executor=AsyncExecutor(max_in_flight=8))
    print(
        f"\nopenai dialect over fake provider: {len(responses)} completions, "
        f"usage={engine.usage.num_calls} records, "
        f"transport={engine.transport.stats()}"
    )

    print(
        "\nTo run against live APIs:\n"
        "  export REPRO_ENGINE=openai            # + OPENAI_API_KEY\n"
        "  export REPRO_ENGINE=anthropic         # + ANTHROPIC_API_KEY\n"
        "  export REPRO_ENGINE=openai_compatible # + REPRO_ENGINE_BASE_URL\n"
        "  python -m repro.experiments.runner --engine openai ...\n"
    )


if __name__ == "__main__":
    main()
