"""Cost planning: estimate the monetary cost of an ER campaign before running it.

The paper's introduction motivates batch prompting with a back-of-the-envelope
calculation: resolving 500,000 candidate pairs with GPT-4 standard prompting
(3 demonstrations per question) costs about $1,800.  This example reproduces
that style of estimate with the library's tokenizer and pricing tables, and
contrasts standard prompting, batch prompting, and different models.

Run with:  python examples/cost_planning.py
"""

from repro import BatcherConfig, load_dataset
from repro.evaluation.report import format_table
from repro.llm.pricing import get_pricing
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.standard import StandardPromptBuilder
from repro.text.tokenizer import ApproxTokenizer

#: Size of the hypothetical ER campaign (number of candidate pairs to resolve).
CAMPAIGN_PAIRS = 500_000


def main() -> None:
    # Use a small generated dataset just to obtain realistic prompt sizes.
    dataset = load_dataset("wa", seed=7, scale=0.02)
    questions = list(dataset.splits.test)[:8]
    demonstrations = list(dataset.splits.train)[:8]
    tokenizer = ApproxTokenizer()

    standard_prompt = StandardPromptBuilder(dataset.attributes).build(questions[0], demonstrations)
    batch_prompt = BatchPromptBuilder(dataset.attributes).build(questions, demonstrations)
    tokens_per_question_standard = tokenizer.count(standard_prompt.text)
    tokens_per_question_batch = tokenizer.count(batch_prompt.text) / len(questions)

    rows = []
    for model in ("gpt-3.5-03", "gpt-4"):
        pricing = get_pricing(model)
        for style, tokens_per_question in (
            ("standard", tokens_per_question_standard),
            ("batch (8 per call)", tokens_per_question_batch),
        ):
            total_tokens = tokens_per_question * CAMPAIGN_PAIRS
            cost = pricing.cost(prompt_tokens=int(total_tokens), completion_tokens=0)
            rows.append(
                {
                    "model": model,
                    "prompting": style,
                    "tokens / question": round(tokens_per_question, 1),
                    "campaign cost ($)": round(cost, 2),
                }
            )

    print(f"Estimated API cost of resolving {CAMPAIGN_PAIRS:,} candidate pairs:\n")
    print(format_table(rows))
    config = BatcherConfig()
    print(
        f"\n(Default framework configuration: batching={config.batching!r}, "
        f"selection={config.selection!r}, batch_size={config.batch_size}, "
        f"{config.num_demonstrations} demonstrations per batch.)"
    )


if __name__ == "__main__":
    main()
