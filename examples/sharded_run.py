"""Scaling out: sharded execution, crash-safe checkpoints, zero re-paid calls.

Runs one fixed-seed benchmark three ways and shows that the results are
byte-identical while the execution strategy changes completely:

1. the historical single-pass ``BatchER.run``;
2. the same run split into 4 shards executed concurrently by the
   :class:`~repro.engine.engine.RunEngine`, checkpointed batch by batch;
3. the sharded run killed mid-flight (a deterministic injected fault at the
   k-th LLM call) and resumed from its checkpoints — completing with zero
   repeated LLM calls.

Run with:  python examples/sharded_run.py
"""

import tempfile

from repro import BatchER, BatcherConfig, ConcurrentExecutor, load_dataset
from repro.engine import CrashingLLM, InjectedFault, RunEngine
from repro.llm.registry import create_llm


def main() -> None:
    dataset = load_dataset("beer", seed=7)
    config = BatcherConfig(batching="diverse", selection="covering", seed=1)

    # 1. The oracle: one monolithic in-memory pass.
    oracle = BatchER(config).run(dataset)
    total_calls = oracle.cost.num_llm_calls
    print(f"unsharded: f1={oracle.metrics.f1:.2f}, {total_calls} LLM calls")

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # 2. Sharded + checkpointed: same facade, two extra kwargs.  The
        #    executor bounds how many shards are in flight at once.
        framework = BatchER(config, executor=ConcurrentExecutor(4))
        sharded = framework.run(dataset, shards=4, checkpoint_dir=checkpoint_dir)
        print(f"sharded x4: byte-identical result: {sharded == oracle}")

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # 3. Kill the run at LLM call k, then resume from the checkpoints.
        crash_at = total_calls // 2
        llm = CrashingLLM(
            create_llm(config.model, seed=config.seed, temperature=config.temperature),
            fail_at_call=crash_at,
        )
        engine = RunEngine(config=config, llm=llm, num_shards=4, checkpoint_dir=checkpoint_dir)
        try:
            engine.run(dataset)
        except InjectedFault:
            print(f"killed mid-flight at call {crash_at}; "
                  f"{llm.successful_calls} calls already checkpointed")

        resumed = engine.run(dataset)  # same arguments = resume
        report = engine.last_report
        print(f"resumed: byte-identical result: {resumed == oracle}")
        print(f"resumed: {report.batches_resumed} batches replayed from checkpoints, "
              f"{report.batches_executed} executed live")
        print(f"total LLM calls across crash + resume: {llm.successful_calls} "
              f"(unsharded run: {total_calls}) -> zero repeated calls")


if __name__ == "__main__":
    main()
