"""Quickstart: run BatchER end-to-end on one benchmark dataset.

Loads the (synthetic) BeerAdvo-RateBeer benchmark, runs the paper's best design
choice — diversity-based question batching + covering-based demonstration
selection — against the simulated GPT-3.5 backend with concurrent prompt
dispatch, and prints matching accuracy and monetary cost next to plain
standard prompting.  Finishes with the serving-style Resolver session.

Run with:  python examples/quickstart.py
"""

from repro import BatchER, BatcherConfig, ConcurrentExecutor, Resolver, load_dataset
from repro.core.standard import StandardPromptingER
from repro.evaluation.report import format_table


def main() -> None:
    dataset = load_dataset("beer", seed=7)
    print(f"Loaded {dataset.full_name}: {dataset.statistics()}")

    config = BatcherConfig(batching="diverse", selection="covering", seed=1)
    # The batch prompts are independent, so dispatch them concurrently —
    # results are identical to serial dispatch, only wall-clock changes.
    batch_result = BatchER(config, executor=ConcurrentExecutor(max_workers=4)).run(dataset)
    standard_result = StandardPromptingER(config).run(dataset)

    rows = [standard_result.summary(), batch_result.summary()]
    print()
    print(format_table(rows, columns=["method", "f1", "precision", "recall", "api_cost", "label_cost", "llm_calls"]))
    saving = standard_result.cost.api_cost / max(batch_result.cost.api_cost, 1e-9)
    print(f"\nBatch prompting used {batch_result.cost.num_llm_calls} LLM calls instead of "
          f"{standard_result.cost.num_llm_calls} and cut API cost by {saving:.1f}x.")

    # Serving-style: resolve an ad-hoc unlabeled pair stream with a session.
    resolver = Resolver.from_dataset(dataset, config)
    incoming = [pair.without_label() for pair in list(dataset.splits.test)[:16]]
    matches = sum(1 for r in resolver.resolve(incoming) if r.is_match)
    print(f"\nResolver session: {matches}/{len(incoming)} of the streamed pairs "
          f"predicted as matches (session cost ${resolver.cost().total_cost:.3f}).")


if __name__ == "__main__":
    main()
