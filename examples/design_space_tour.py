"""Design-space tour: compare every batching x selection combination.

Reproduces a single-dataset slice of the paper's Table IV on the Walmart-Amazon
benchmark (scaled down for speed): all 12 combinations of question batching
(random / similarity / diversity) and demonstration selection (fixed /
top-k-batch / top-k-question / covering), reporting F1, API cost and labeling
cost — the accuracy/cost trade-off the paper explores.

Run with:  python examples/design_space_tour.py
"""

from repro import BatchER, BatcherConfig, load_dataset
from repro.evaluation.report import format_table


def main() -> None:
    dataset = load_dataset("wa", seed=7, scale=0.06)
    print(f"Dataset: {dataset.full_name}, test questions: {len(dataset.splits.test)}\n")

    rows = []
    for batching in ("random", "similar", "diverse"):
        for selection in ("fixed", "topk-batch", "topk-question", "covering"):
            config = BatcherConfig(batching=batching, selection=selection, seed=1)
            result = BatchER(config).run(dataset)
            rows.append(
                {
                    "batching": batching,
                    "selection": selection,
                    "F1": round(result.metrics.f1, 2),
                    "API ($)": round(result.cost.api_cost, 3),
                    "Label ($)": round(result.cost.labeling_cost, 3),
                    "labeled demos": result.cost.num_labeled_pairs,
                }
            )

    print(format_table(rows))
    best = max(rows, key=lambda row: row["F1"])
    cheapest = min(rows, key=lambda row: row["API ($)"] + row["Label ($)"])
    print(f"\nHighest F1: {best['batching']} + {best['selection']} ({best['F1']})")
    print(f"Lowest total cost: {cheapest['batching']} + {cheapest['selection']} "
          f"(${cheapest['API ($)'] + cheapest['Label ($)']:.3f})")


if __name__ == "__main__":
    main()
